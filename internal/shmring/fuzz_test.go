package shmring

import (
	"encoding/binary"
	"testing"
)

// FuzzRingDescriptor feeds adversarial bytes through both trust boundaries of
// the package: FromBuffer's header validation, and — when the header parses —
// the consumer-side ring walk over attacker-controlled cursors and
// descriptors. The invariant under fuzz is purely memory safety: no input may
// panic, and every payload Peek hands back must alias the input buffer, never
// memory outside it.
func FuzzRingDescriptor(f *testing.F) {
	// Seed 1: a pristine minimal segment.
	small := Geometry{Slots: MinSlots, SlotSize: MinSlotSize}
	good := make([]byte, small.SegmentSize())
	InitBuffer(good, small)
	f.Add(good)

	// Seed 2: one published entry, so mutations hit live descriptors.
	seg, err := FromBuffer(good)
	if err != nil {
		f.Fatal(err)
	}
	slot, _ := seg.Req.Reserve()
	slot = append(slot, "seed payload"...)
	seg.Req.Publish(7, len(slot))
	busy := append([]byte(nil), good...)
	f.Add(busy)

	// Seed 3: torn cursors — tail far beyond head.
	torn := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(torn[headerSize+64:], 1<<40)
	f.Add(torn)

	// Seed 4: descriptor escaping the slab.
	oob := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(oob[headerSize+64:], 1) // tail=1: one entry
	binary.LittleEndian.PutUint32(oob[headerSize+ringHeaderSize:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(oob[headerSize+ringHeaderSize+4:], 0xFFFFFFFF)
	f.Add(oob)

	// Seed 5: garbage geometry behind a valid magic.
	badGeo := append([]byte(nil), good[:headerSize]...)
	binary.LittleEndian.PutUint32(badGeo[8:12], 3)
	binary.LittleEndian.PutUint32(badGeo[12:16], 7)
	f.Add(badGeo)

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := FromBuffer(data)
		if err != nil {
			return // rejected at the header — exactly what hostile input should hit
		}
		// The header parsed; now every ring operation must stay inside data no
		// matter what the cursor/descriptor regions hold.
		for _, r := range []*Ring{seg.Req, seg.Resp} {
			id, payload, ok, err := r.Peek()
			if err != nil {
				continue
			}
			if ok {
				_ = id
				if len(payload) > 0 {
					// Touch both ends and verify the slice aliases data.
					_ = payload[0] + payload[len(payload)-1]
					first := &payload[0]
					last := &payload[len(payload)-1]
					inBuf := func(p *byte) bool {
						for i := range data {
							if &data[i] == p {
								return true
							}
						}
						return false
					}
					// Pointer-identity scan is O(n) but segments under fuzz are
					// small (min geometry ≈ 17 KiB).
					if !inBuf(first) || !inBuf(last) {
						t.Fatalf("Peek payload escapes the segment buffer")
					}
				}
				r.Advance()
			}
			if slot, ok := r.Reserve(); ok {
				// Producer side must also stay in-bounds: fill the slot.
				slot = slot[:cap(slot)]
				for i := range slot {
					slot[i] = 0xA5
				}
				r.Publish(1, len(slot))
			}
			r.SetWaiting()
			r.TakeWaiting()
		}
	})
}
