//go:build !unix

package shmring

import (
	"errors"
	"os"
)

// ErrUnsupported reports that this platform has no shared-memory mapping
// support wired up; the serving stack falls back to the framed socket
// protocol exactly as it does against a server that never learned MTS1.
var ErrUnsupported = errors.New("shmring: shared-memory segments are not supported on this platform")

func mmap(f *os.File, size int) ([]byte, error) { return nil, ErrUnsupported }

func munmap(data []byte) error { return nil }
