// Package shmring is the shared-memory ring transport under the serving
// daemon's MTS1 upgrade: one mmap'd segment per connection holding two
// single-producer/single-consumer descriptor rings (request and response)
// plus fixed-slot payload slabs. Steady-state predict traffic moves through
// the segment with zero syscalls and zero server-side copies — the producer
// encodes a request into a slab slot and publishes a descriptor with one
// atomic store; the consumer decodes straight out of the slab and answers in
// place through the opposite ring. The only kernel involvement left is the
// doorbell: a parked consumer advertises itself through the ring's waiting
// flag and is woken by one frame on the accompanying unix socket, so an idle
// connection burns no CPU and a busy one never enters the kernel at all.
//
// Segment layout (all integers little-endian, every region 64-byte aligned):
//
//	header   64 B   magic "MTSR" | version u32 | slots u32 | slotSize u32 |
//	                segSize u64 (rest reserved)
//	reqRing         ring header (3 cache lines: head, tail, waiting) +
//	                slots × 16 B descriptors {off u32, len u32, id u32, rsvd}
//	respRing        same shape
//	reqSlab         slots × slotSize payload bytes (client → server)
//	respSlab        slots × slotSize payload bytes (server → client)
//
// Descriptor slot i owns slab bytes [i*slotSize, (i+1)*slotSize); cursors are
// free-running uint64 sequence numbers (slot = seq & (slots-1)). The segment
// is plain shared memory written by another — possibly hostile or crashed —
// process, so every consumer-side read revalidates what it loads: torn or
// runaway cursors and out-of-bounds descriptors surface as ErrCorrupt, never
// as a read outside the mapping.
package shmring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

// Magic identifies a segment header.
const Magic = "MTSR"

// Version is the layout version written by Create and required by open.
const Version = 1

// Geometry bounds. Slots must be a power of two so the slot index is one
// mask; slot sizes are multiples of 64 so every slab slot stays cache-line
// aligned.
const (
	DefaultSlots    = 64
	DefaultSlotSize = 64 << 10
	MinSlots        = 8
	MaxSlots        = 4096
	MinSlotSize     = 1 << 10
	MaxSlotSize     = 1 << 20
)

const (
	headerSize     = 64
	ringHeaderSize = 192 // head, tail, waiting — one cache line each
	descSize       = 16
)

// ErrCorrupt reports a segment whose header, cursors, or descriptors are
// inconsistent: the peer is torn, hostile, or gone mid-write. The connection
// owning the segment cannot be resynchronized and should be torn down.
var ErrCorrupt = errors.New("shmring: corrupt segment state")

// Geometry is one ring pair's shape: Slots descriptors per direction, each
// owning SlotSize payload bytes.
type Geometry struct {
	Slots    uint32
	SlotSize uint32
}

// DefaultGeometry returns the server-default shape: 64 slots × 64 KiB, an
// 8 MiB segment comfortably covering a default-max-batch predict frame with
// deep pipelining.
func DefaultGeometry() Geometry {
	return Geometry{Slots: DefaultSlots, SlotSize: DefaultSlotSize}
}

// Validate checks the geometry bounds.
func (g Geometry) Validate() error {
	if g.Slots < MinSlots || g.Slots > MaxSlots || g.Slots&(g.Slots-1) != 0 {
		return fmt.Errorf("shmring: slots must be a power of two in [%d, %d], got %d", MinSlots, MaxSlots, g.Slots)
	}
	if g.SlotSize < MinSlotSize || g.SlotSize > MaxSlotSize || g.SlotSize%64 != 0 {
		return fmt.Errorf("shmring: slot size must be a multiple of 64 in [%d, %d], got %d", MinSlotSize, MaxSlotSize, g.SlotSize)
	}
	return nil
}

// Normalize clamps an arbitrary requested geometry (e.g. from a peer's
// handshake frame) to a valid one: zeros become the defaults, slot counts
// round up to the next power of two, slot sizes round up to a cache line,
// and both clamp into their bounds.
func Normalize(g Geometry) Geometry {
	if g.Slots == 0 {
		g.Slots = DefaultSlots
	}
	if g.SlotSize == 0 {
		g.SlotSize = DefaultSlotSize
	}
	g.Slots = min(max(ceilPow2(g.Slots), MinSlots), MaxSlots)
	g.SlotSize = min(max((g.SlotSize+63)&^uint32(63), MinSlotSize), MaxSlotSize)
	return g
}

// ceilPow2 rounds v up to the next power of two (saturating at 2^31).
func ceilPow2(v uint32) uint32 {
	if v <= 1 {
		return 1
	}
	if v > 1<<31 {
		return 1 << 31
	}
	return 1 << (32 - bitsLeadingZeros32(v-1))
}

// bitsLeadingZeros32 avoids importing math/bits for one call site.
func bitsLeadingZeros32(v uint32) uint {
	n := uint(0)
	for v != 0 {
		v >>= 1
		n++
	}
	return 32 - n
}

// ringBytes is one ring's header + descriptor area.
func (g Geometry) ringBytes() int64 {
	return ringHeaderSize + int64(g.Slots)*descSize
}

// SegmentSize is the total segment byte count for this geometry.
func (g Geometry) SegmentSize() int64 {
	return headerSize + 2*g.ringBytes() + 2*int64(g.Slots)*int64(g.SlotSize)
}

// Segment is one mapped ring pair. Req carries producer=client traffic,
// Resp carries producer=server traffic; which ring a process produces into
// is a matter of which side of the connection it is, the Segment itself is
// symmetric.
type Segment struct {
	path   string
	data   []byte
	mapped bool
	geo    Geometry
	Req    *Ring
	Resp   *Ring
}

// Path returns the backing file path ("" for in-memory segments).
func (s *Segment) Path() string { return s.path }

// Geometry returns the segment's validated shape.
func (s *Segment) Geometry() Geometry { return s.geo }

// Create builds a fresh segment file at path (failing if one exists),
// truncates it to the geometry's size, maps it, and initializes the header
// with both rings empty.
func Create(path string, g Geometry) (*Segment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shmring: create %s: %w", path, err)
	}
	defer f.Close()
	size := g.SegmentSize()
	if err := f.Truncate(size); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("shmring: size %s: %w", path, err)
	}
	data, err := mmap(f, int(size))
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("shmring: map %s: %w", path, err)
	}
	InitBuffer(data, g)
	seg, err := fromBuffer(data, path, true)
	if err != nil {
		munmap(data)
		os.Remove(path)
		return nil, err
	}
	return seg, nil
}

// Open maps an existing segment file created by a peer's Create, validating
// the header before trusting any of it.
func Open(path string) (*Segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmring: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shmring: stat %s: %w", path, err)
	}
	if st.Size() < headerSize || st.Size() > headerSize+2*(ringHeaderSize+MaxSlots*descSize)+2*MaxSlots*MaxSlotSize {
		return nil, fmt.Errorf("%w: implausible segment size %d", ErrCorrupt, st.Size())
	}
	data, err := mmap(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("shmring: map %s: %w", path, err)
	}
	seg, err := fromBuffer(data, path, true)
	if err != nil {
		munmap(data)
		return nil, err
	}
	return seg, nil
}

// NewInMemory builds a heap-backed segment, for tests and same-process
// benchmarks that do not need a file.
func NewInMemory(g Geometry) (*Segment, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	data := make([]byte, g.SegmentSize())
	InitBuffer(data, g)
	return fromBuffer(data, "", false)
}

// InitBuffer writes a fresh segment header for g into data (which must hold
// at least headerSize bytes) and leaves both rings empty. Exported for the
// fuzz harness, which corrupts initialized buffers.
func InitBuffer(data []byte, g Geometry) {
	copy(data[0:4], Magic)
	binary.LittleEndian.PutUint32(data[4:8], Version)
	binary.LittleEndian.PutUint32(data[8:12], g.Slots)
	binary.LittleEndian.PutUint32(data[12:16], g.SlotSize)
	binary.LittleEndian.PutUint64(data[16:24], uint64(g.SegmentSize()))
}

// FromBuffer interprets data as a segment without mapping anything: the
// header is validated exactly like Open's. The fuzz tests drive this with
// adversarial bytes; the contract is that no input makes it (or the rings it
// returns) panic or touch memory outside data.
func FromBuffer(data []byte) (*Segment, error) { return fromBuffer(data, "", false) }

func fromBuffer(data []byte, path string, mapped bool) (*Segment, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte segment is smaller than its header", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w: segment version %d, want %d", ErrCorrupt, v, Version)
	}
	g := Geometry{
		Slots:    binary.LittleEndian.Uint32(data[8:12]),
		SlotSize: binary.LittleEndian.Uint32(data[12:16]),
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	size := g.SegmentSize()
	if binary.LittleEndian.Uint64(data[16:24]) != uint64(size) {
		return nil, fmt.Errorf("%w: header claims %d bytes, geometry needs %d",
			ErrCorrupt, binary.LittleEndian.Uint64(data[16:24]), size)
	}
	if int64(len(data)) < size {
		return nil, fmt.Errorf("%w: %d-byte segment, geometry needs %d", ErrCorrupt, len(data), size)
	}
	ringBytes := g.ringBytes()
	slabBytes := int64(g.Slots) * int64(g.SlotSize)
	reqRingOff := int64(headerSize)
	respRingOff := reqRingOff + ringBytes
	reqSlabOff := respRingOff + ringBytes
	respSlabOff := reqSlabOff + slabBytes
	return &Segment{
		path:   path,
		data:   data,
		mapped: mapped,
		geo:    g,
		Req:    ringAt(data, reqRingOff, reqSlabOff, g),
		Resp:   ringAt(data, respRingOff, respSlabOff, g),
	}, nil
}

// Close unmaps the segment. The caller must guarantee no goroutine touches
// either ring afterwards. The backing file, if any, is not removed — see
// Unlink.
func (s *Segment) Close() error {
	if !s.mapped {
		return nil
	}
	s.mapped = false
	return munmap(s.data)
}

// Unlink removes the backing file. Established mappings survive an unlink
// (the pages live until the last munmap), so the creating side unlinks as
// soon as both peers are mapped and nothing is left to leak on exit.
func (s *Segment) Unlink() error {
	if s.path == "" {
		return nil
	}
	return os.Remove(s.path)
}

// ringAt builds a Ring view over the segment region at ringOff/slabOff. All
// offsets are 64-byte aligned by construction (the header is 64 bytes, ring
// areas are 192 + slots*16 with slots ≥ 8 a power of two, slabs are
// slot-size multiples), which the atomic cursor pointers require.
func ringAt(data []byte, ringOff, slabOff int64, g Geometry) *Ring {
	hdr := data[ringOff:]
	return &Ring{
		head:     (*atomic.Uint64)(unsafe.Pointer(&hdr[0])),
		tail:     (*atomic.Uint64)(unsafe.Pointer(&hdr[64])),
		waiting:  (*atomic.Uint32)(unsafe.Pointer(&hdr[128])),
		descs:    data[ringOff+ringHeaderSize : ringOff+ringHeaderSize+int64(g.Slots)*descSize],
		slab:     data[slabOff : slabOff+int64(g.Slots)*int64(g.SlotSize)],
		slots:    uint64(g.Slots),
		mask:     uint64(g.Slots) - 1,
		slotSize: uint64(g.SlotSize),
	}
}
