package shmring

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Ring is one direction of a segment: a single-producer/single-consumer
// descriptor ring over a fixed-slot payload slab. The producer and consumer
// are different processes (or goroutines); within one process each role must
// be externally serialized — a multiplexing client takes a producer lock, a
// serving loop is naturally single-threaded.
//
// Cursors are free-running sequence numbers: tail is advanced by the
// producer with a release store after the descriptor and payload are in
// place, head by the consumer after it is done with a slot. Go's sync/atomic
// gives the acquire/release ordering both directions need; everything else
// in the ring is plain memory guarded by those two cursors.
//
// The waiting flag is the doorbell contract: a consumer that found the ring
// empty sets it, re-checks the ring (the lost-wakeup guard), and parks on
// its connection; a producer that observes-and-clears it (TakeWaiting) after
// publishing owes the peer one wake frame. While traffic keeps both rings
// nonempty the flag stays clear and neither side enters the kernel.
type Ring struct {
	head     *atomic.Uint64
	tail     *atomic.Uint64
	waiting  *atomic.Uint32
	descs    []byte
	slab     []byte
	slots    uint64
	mask     uint64
	slotSize uint64
}

// Slots returns the ring's descriptor capacity.
func (r *Ring) Slots() int { return int(r.slots) }

// SlotSize returns the payload capacity of one slot.
func (r *Ring) SlotSize() int { return int(r.slotSize) }

// Reserve returns the payload buffer of the next free slot (length 0,
// capacity SlotSize) for the producer to encode into, or ok=false when the
// ring is full. A cursor pair torn into impossibility reads as full, never
// as a wild slot index.
func (r *Ring) Reserve() (slot []byte, ok bool) {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h >= r.slots {
		return nil, false
	}
	off := (t & r.mask) * r.slotSize
	return r.slab[off : off : off+r.slotSize], true
}

// Publish commits the slot returned by the last Reserve with the request id
// and payload length n, making it visible to the consumer. n must not exceed
// the slot capacity.
func (r *Ring) Publish(id uint32, n int) { r.PublishAt(id, 0, n) }

// PublishAt is Publish with the payload starting skip bytes into the slot.
// Producers use it to place a payload so that some interior field — the
// float matrix of a batch request — lands 8-byte-aligned in the slab, which
// unlocks the consumer's zero-copy decode (slots themselves are 64-byte-
// aligned, so alignment within the slot is alignment in memory). The
// descriptor carries the skewed offset; consumers never see the skip.
// skip+n must not exceed the slot capacity.
func (r *Ring) PublishAt(id uint32, skip, n int) {
	if skip < 0 || n < 0 || uint64(skip)+uint64(n) > r.slotSize {
		panic(fmt.Sprintf("shmring: PublishAt(%d, %d) outside a %d-byte slot", skip, n, r.slotSize))
	}
	t := r.tail.Load()
	off := (t&r.mask)*r.slotSize + uint64(skip)
	d := r.descs[(t&r.mask)*descSize:]
	binary.LittleEndian.PutUint32(d[0:4], uint32(off))
	binary.LittleEndian.PutUint32(d[4:8], uint32(n))
	binary.LittleEndian.PutUint32(d[8:12], id)
	r.tail.Store(t + 1)
}

// Peek returns the oldest unconsumed entry without consuming it: its id and
// a payload slice aliasing the slab. ok=false means the ring is empty. A
// non-nil error means the peer published garbage — a descriptor pointing
// outside the slab, a length beyond its slot, or cursors further apart than
// the ring is deep — and the segment can no longer be trusted. The payload
// remains valid until Advance.
func (r *Ring) Peek() (id uint32, payload []byte, ok bool, err error) {
	h := r.head.Load()
	t := r.tail.Load()
	d := t - h
	if d == 0 {
		return 0, nil, false, nil
	}
	if d > r.slots {
		return 0, nil, false, fmt.Errorf("%w: cursors %d apart on a %d-slot ring", ErrCorrupt, d, r.slots)
	}
	desc := r.descs[(h&r.mask)*descSize:]
	off := uint64(binary.LittleEndian.Uint32(desc[0:4]))
	n := uint64(binary.LittleEndian.Uint32(desc[4:8]))
	id = binary.LittleEndian.Uint32(desc[8:12])
	if n > r.slotSize || off+n > uint64(len(r.slab)) {
		return 0, nil, false, fmt.Errorf("%w: descriptor %d+%d outside a %d-byte slab (slot size %d)",
			ErrCorrupt, off, n, len(r.slab), r.slotSize)
	}
	return id, r.slab[off : off+n], true, nil
}

// PeekAt is Peek for the k-th oldest unconsumed entry (PeekAt(0) == Peek).
// It lets a consumer look ahead and dispatch several pending requests to
// workers while still consuming in order: every peeked payload stays valid
// until Advance moves the head past its entry. ok=false means fewer than k+1
// entries are pending.
func (r *Ring) PeekAt(k int) (id uint32, payload []byte, ok bool, err error) {
	h := r.head.Load()
	t := r.tail.Load()
	d := t - h
	if d > r.slots {
		return 0, nil, false, fmt.Errorf("%w: cursors %d apart on a %d-slot ring", ErrCorrupt, d, r.slots)
	}
	if d <= uint64(k) {
		return 0, nil, false, nil
	}
	h += uint64(k)
	desc := r.descs[(h&r.mask)*descSize:]
	off := uint64(binary.LittleEndian.Uint32(desc[0:4]))
	n := uint64(binary.LittleEndian.Uint32(desc[4:8]))
	id = binary.LittleEndian.Uint32(desc[8:12])
	if n > r.slotSize || off+n > uint64(len(r.slab)) {
		return 0, nil, false, fmt.Errorf("%w: descriptor %d+%d outside a %d-byte slab (slot size %d)",
			ErrCorrupt, off, n, len(r.slab), r.slotSize)
	}
	return id, r.slab[off : off+n], true, nil
}

// Advance consumes the entry returned by the last Peek, freeing its slot for
// the producer. The peeked payload must not be touched afterwards.
func (r *Ring) Advance() {
	r.head.Store(r.head.Load() + 1)
}

// Pending reports whether the ring holds unconsumed entries.
func (r *Ring) Pending() bool { return r.tail.Load() != r.head.Load() }

// SetWaiting advertises that the consumer is about to park. The caller must
// re-check Pending afterwards before actually parking — a publish that raced
// the flag store would otherwise sleep through its own doorbell.
func (r *Ring) SetWaiting() { r.waiting.Store(1) }

// ClearWaiting withdraws the advertisement (the consumer found work or woke).
func (r *Ring) ClearWaiting() { r.waiting.Store(0) }

// TakeWaiting atomically reads-and-clears the waiting flag. A producer calls
// it after publishing; true means the consumer was parked (or about to park)
// and the producer owes it one doorbell frame.
func (r *Ring) TakeWaiting() bool { return r.waiting.Swap(0) == 1 }
