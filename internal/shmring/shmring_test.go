package shmring

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestGeometryNormalize(t *testing.T) {
	cases := []struct {
		in, want Geometry
	}{
		{Geometry{}, DefaultGeometry()},
		{Geometry{Slots: 3, SlotSize: 100}, Geometry{Slots: MinSlots, SlotSize: MinSlotSize}},
		{Geometry{Slots: 65, SlotSize: 4096}, Geometry{Slots: 128, SlotSize: 4096}},
		{Geometry{Slots: 1 << 30, SlotSize: 1 << 30}, Geometry{Slots: MaxSlots, SlotSize: MaxSlotSize}},
	}
	for _, c := range cases {
		got := Normalize(c.in)
		if got != c.want {
			t.Errorf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("Normalize(%+v) = %+v does not validate: %v", c.in, got, err)
		}
	}
}

func TestSegmentCreateOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring.shm")
	g := Geometry{Slots: 8, SlotSize: 1024}
	srv, err := Create(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Geometry() != g {
		t.Fatalf("opened geometry %+v, want %+v", cli.Geometry(), g)
	}

	// Client produces a request; server sees the identical bytes through its
	// own mapping and answers through the response ring.
	slot, ok := cli.Req.Reserve()
	if !ok {
		t.Fatal("fresh ring full")
	}
	slot = append(slot, "hello over shared memory"...)
	cli.Req.Publish(42, len(slot))

	id, payload, ok, err := srv.Req.Peek()
	if err != nil || !ok {
		t.Fatalf("Peek = ok=%v err=%v", ok, err)
	}
	if id != 42 || string(payload) != "hello over shared memory" {
		t.Fatalf("server saw id=%d payload=%q", id, payload)
	}
	rslot, ok := srv.Resp.Reserve()
	if !ok {
		t.Fatal("response ring full")
	}
	rslot = append(rslot, "ack"...)
	srv.Resp.Publish(id, len(rslot))
	srv.Req.Advance()

	rid, rp, ok, err := cli.Resp.Peek()
	if err != nil || !ok || rid != 42 || string(rp) != "ack" {
		t.Fatalf("client response peek: id=%d payload=%q ok=%v err=%v", rid, rp, ok, err)
	}
	cli.Resp.Advance()

	// The file survives an unlink for as long as the mappings do.
	if err := srv.Unlink(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("segment file still present after Unlink: %v", err)
	}
	slot, ok = cli.Req.Reserve()
	if !ok {
		t.Fatal("ring full after unlink")
	}
	slot = append(slot, 'x')
	cli.Req.Publish(7, len(slot))
	if id, _, ok, err := srv.Req.Peek(); err != nil || !ok || id != 7 {
		t.Fatalf("post-unlink traffic: id=%d ok=%v err=%v", id, ok, err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring.shm")
	s, err := Create(path, DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Create(path, DefaultGeometry()); err == nil {
		t.Fatal("Create over an existing file succeeded")
	}
}

func TestRingFullAndWrap(t *testing.T) {
	seg, err := NewInMemory(Geometry{Slots: 8, SlotSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r := seg.Req
	// Fill to capacity, drain, refill: sequence numbers keep running past the
	// slot count and the mask brings them home.
	for round := 0; round < 5; round++ {
		for i := 0; i < r.Slots(); i++ {
			slot, ok := r.Reserve()
			if !ok {
				t.Fatalf("round %d: full after %d entries", round, i)
			}
			slot = append(slot, byte(round), byte(i))
			r.Publish(uint32(round*100+i), len(slot))
		}
		if _, ok := r.Reserve(); ok {
			t.Fatalf("round %d: Reserve succeeded on a full ring", round)
		}
		for i := 0; i < r.Slots(); i++ {
			id, payload, ok, err := r.Peek()
			if err != nil || !ok {
				t.Fatalf("round %d entry %d: ok=%v err=%v", round, i, ok, err)
			}
			if id != uint32(round*100+i) || !bytes.Equal(payload, []byte{byte(round), byte(i)}) {
				t.Fatalf("round %d entry %d: id=%d payload=%v", round, i, id, payload)
			}
			r.Advance()
		}
		if r.Pending() {
			t.Fatalf("round %d: ring pending after full drain", round)
		}
	}
}

// TestRingPublishAt pins the skewed-offset publish: the consumer sees
// exactly the [skip, skip+n) window of the slot at an address whose
// alignment the producer controlled, and out-of-slot skews panic instead of
// corrupting a neighbor.
func TestRingPublishAt(t *testing.T) {
	seg, err := NewInMemory(Geometry{Slots: 8, SlotSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r := seg.Req
	for skip := 0; skip < 8; skip++ {
		slot, ok := r.Reserve()
		if !ok {
			t.Fatalf("skip %d: ring full", skip)
		}
		payload := []byte{0xAA, byte(skip), 0xBB}
		copy(slot[skip:skip+len(payload)], payload)
		r.PublishAt(uint32(skip), skip, len(payload))

		id, got, ok, err := r.Peek()
		if err != nil || !ok || id != uint32(skip) {
			t.Fatalf("skip %d: id=%d ok=%v err=%v", skip, id, ok, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("skip %d: payload %v, want %v", skip, got, payload)
		}
		// The producer controls in-slab alignment: slots are 64-aligned, so
		// the payload lands at offset ≡ skip (mod 8).
		if a := uintptr(unsafe.Pointer(&got[0])) % 8; a != uintptr(skip%8) {
			t.Fatalf("skip %d: payload aligned at %d", skip, a)
		}
		r.Advance()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PublishAt past the slot capacity did not panic")
			}
		}()
		if _, ok := r.Reserve(); !ok {
			t.Fatal("ring full")
		}
		r.PublishAt(0, 1000, 100)
	}()
}

func TestWaitingFlagHandshake(t *testing.T) {
	seg, err := NewInMemory(Geometry{Slots: 8, SlotSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r := seg.Req
	if r.TakeWaiting() {
		t.Fatal("fresh ring advertises a waiting consumer")
	}
	r.SetWaiting()
	if !r.TakeWaiting() {
		t.Fatal("TakeWaiting missed the flag")
	}
	if r.TakeWaiting() {
		t.Fatal("TakeWaiting did not clear the flag")
	}
	r.SetWaiting()
	r.ClearWaiting()
	if r.TakeWaiting() {
		t.Fatal("ClearWaiting left the flag set")
	}
}

// TestRingCorruptionDetected drives every validated failure mode: torn
// cursors and descriptors escaping the slab surface as ErrCorrupt from Peek,
// and a hostile cursor pair reads as full, never as a wild slot.
func TestRingCorruptionDetected(t *testing.T) {
	mk := func() *Segment {
		seg, err := NewInMemory(Geometry{Slots: 8, SlotSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		return seg
	}

	t.Run("cursor gap beyond depth", func(t *testing.T) {
		seg := mk()
		seg.Req.tail.Store(100) // head 0: 100 apart on an 8-slot ring
		if _, _, _, err := seg.Req.Peek(); err == nil {
			t.Fatal("torn cursors not detected")
		}
	})
	t.Run("descriptor length beyond slot", func(t *testing.T) {
		seg := mk()
		slot, _ := seg.Req.Reserve()
		seg.Req.Publish(1, len(append(slot, 'x')))
		binary.LittleEndian.PutUint32(seg.Req.descs[4:8], 4097)
		if _, _, _, err := seg.Req.Peek(); err == nil {
			t.Fatal("oversized descriptor not detected")
		}
	})
	t.Run("descriptor offset outside slab", func(t *testing.T) {
		seg := mk()
		slot, _ := seg.Req.Reserve()
		seg.Req.Publish(1, len(append(slot, 'x')))
		binary.LittleEndian.PutUint32(seg.Req.descs[0:4], uint32(len(seg.Req.slab)))
		binary.LittleEndian.PutUint32(seg.Req.descs[4:8], 64)
		if _, _, _, err := seg.Req.Peek(); err == nil {
			t.Fatal("out-of-slab descriptor not detected")
		}
	})
	t.Run("hostile cursors read as full", func(t *testing.T) {
		seg := mk()
		seg.Req.head.Store(1 << 62)
		seg.Req.tail.Store(0) // tail-head wraps to an enormous distance
		if _, ok := seg.Req.Reserve(); ok {
			t.Fatal("Reserve handed out a slot on hostile cursors")
		}
	})
}

func TestFromBufferRejectsGarbage(t *testing.T) {
	good := make([]byte, Geometry{Slots: 8, SlotSize: 1024}.SegmentSize())
	InitBuffer(good, Geometry{Slots: 8, SlotSize: 1024})
	if _, err := FromBuffer(good); err != nil {
		t.Fatalf("valid buffer rejected: %v", err)
	}

	bad := [][]byte{
		nil,
		[]byte("MTSR"),
		bytes.Repeat([]byte{0xFF}, 4096),
	}
	// Truncated body: valid header, not enough bytes behind it.
	short := make([]byte, 256)
	copy(short, good[:256])
	bad = append(bad, short)
	// Header size field disagreeing with the geometry.
	lied := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lied[16:24], 12345)
	bad = append(bad, lied)
	for i, b := range bad {
		if _, err := FromBuffer(b); err == nil {
			t.Errorf("garbage buffer %d accepted", i)
		}
	}
}

// TestRingPairConcurrentInflight is the -race coverage the transport relies
// on: a producer goroutine streams distinct payloads through the request
// ring while a consumer echoes them through the response ring, with many
// descriptors in flight, and a collector validates every echoed payload.
// The atomic cursor stores are the only synchronization — exactly the
// cross-process contract.
func TestRingPairConcurrentInflight(t *testing.T) {
	seg, err := NewInMemory(Geometry{Slots: 16, SlotSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	var consumerErr atomic.Value

	// Echo server: request payloads come back on the response ring under the
	// same id with a marker byte appended.
	go func() {
		for done := 0; done < total; {
			id, payload, ok, err := seg.Req.Peek()
			if err != nil {
				consumerErr.Store(err)
				return
			}
			if !ok {
				runtime.Gosched()
				continue
			}
			var slot []byte
			for {
				s, ok := seg.Resp.Reserve()
				if ok {
					slot = s
					break
				}
				runtime.Gosched()
			}
			slot = append(slot, payload...)
			slot = append(slot, 0xEE)
			seg.Resp.Publish(id, len(slot))
			seg.Req.Advance()
			done++
		}
	}()

	recvDone := make(chan error, 1)
	go func() {
		seen := make(map[uint32]bool, total)
		for len(seen) < total {
			id, payload, ok, err := seg.Resp.Peek()
			if err != nil {
				recvDone <- err
				return
			}
			if !ok {
				runtime.Gosched()
				continue
			}
			if seen[id] {
				recvDone <- fmt.Errorf("id %d echoed twice", id)
				return
			}
			want := payloadFor(id)
			if len(payload) != len(want)+1 || !bytes.Equal(payload[:len(want)], want) || payload[len(want)] != 0xEE {
				recvDone <- fmt.Errorf("id %d echoed %v", id, payload)
				return
			}
			seen[id] = true
			seg.Resp.Advance()
		}
		recvDone <- nil
	}()

	for i := 0; i < total; i++ {
		var slot []byte
		for {
			s, ok := seg.Req.Reserve()
			if ok {
				slot = s
				break
			}
			runtime.Gosched()
		}
		slot = append(slot, payloadFor(uint32(i))...)
		seg.Req.Publish(uint32(i), len(slot))
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
	if err, _ := consumerErr.Load().(error); err != nil {
		t.Fatal(err)
	}
}

// payloadFor derives a distinct, length-varying payload from an id.
func payloadFor(id uint32) []byte {
	n := 1 + int(id%97)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(id + uint32(i)*31)
	}
	return b
}
