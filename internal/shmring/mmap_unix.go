//go:build unix

package shmring

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f shared and read-write: both peers see each
// other's stores, and the mapping outlives the descriptor (f is closed right
// after mapping) and the file name (the creator unlinks once both sides are
// mapped).
func mmap(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
