package rl

import (
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// Evaluator scores a candidate network; higher is better. Used by the
// evolution-strategies trainer for policies whose reward is only available at
// episode granularity (e.g. AuTO's threshold agent optimizing mean FCT).
type Evaluator func(net *nn.Network, seed int64) float64

// ES is a simple (μ,λ) evolution-strategies trainer with rank-based weights.
// It trains deterministic continuous policies without needing differentiable
// rewards, substituting for DDPG in the paper's sRLA teacher.
type ES struct {
	// Population is the number of perturbations per generation.
	Population int
	// Sigma is the perturbation standard deviation.
	Sigma float64
	// LR is the parameter-update learning rate.
	LR float64
	// Evals is how many episode seeds each candidate is averaged over.
	Evals int
}

// NewES returns an ES trainer with reasonable defaults for small policies.
func NewES() *ES {
	return &ES{Population: 16, Sigma: 0.1, LR: 0.05, Evals: 2}
}

// Train optimizes net in place for the given number of generations and
// returns the best score per generation.
func (e *ES) Train(net *nn.Network, eval Evaluator, generations int, seed int64) []float64 {
	return e.TrainParams(net.Params(), func(seed int64) float64 { return eval(net, seed) }, generations, seed)
}

// TrainParams optimizes an arbitrary flat parameter set in place; eval is
// called after the candidate parameters have been written. This form lets
// models composed of several networks (e.g. the RouteNet message-passing
// blocks) be trained as one parameter vector.
func (e *ES) TrainParams(params []nn.Param, eval func(seed int64) float64, generations int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	dim := 0
	for _, p := range params {
		dim += len(p.W)
	}
	history := make([]float64, 0, generations)

	for gen := 0; gen < generations; gen++ {
		type cand struct {
			noise []float64
			score float64
		}
		cands := make([]cand, e.Population)
		base := flatten(params, dim)
		for c := range cands {
			noise := make([]float64, dim)
			for i := range noise {
				noise[i] = rng.NormFloat64()
			}
			setFlat(params, addScaled(base, noise, e.Sigma))
			score := 0.0
			for k := 0; k < e.Evals; k++ {
				score += eval(seed + int64(gen*e.Evals+k))
			}
			cands[c] = cand{noise: noise, score: score / float64(e.Evals)}
		}
		setFlat(params, base)

		// Rank-based weighting: top half gets positive weight.
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return cands[order[a]].score > cands[order[b]].score })
		grad := make([]float64, dim)
		for rank, idx := range order {
			w := float64(len(cands)/2-rank) / float64(len(cands))
			for i, nz := range cands[idx].noise {
				grad[i] += w * nz
			}
		}
		step := e.LR / (float64(e.Population) * e.Sigma)
		for i := range base {
			base[i] += step * grad[i]
		}
		setFlat(params, base)
		history = append(history, cands[order[0]].score)
	}
	return history
}

func flatten(params []nn.Param, dim int) []float64 {
	out := make([]float64, 0, dim)
	for _, p := range params {
		out = append(out, p.W...)
	}
	return out
}

func setFlat(params []nn.Param, flat []float64) {
	i := 0
	for _, p := range params {
		copy(p.W, flat[i:i+len(p.W)])
		i += len(p.W)
	}
}

func addScaled(base, noise []float64, s float64) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		out[i] = base[i] + s*noise[i]
	}
	return out
}
