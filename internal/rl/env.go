// Package rl provides the reinforcement-learning substrate used to train the
// teacher policies of the Metis reproduction: an environment interface, an
// advantage actor-critic (A2C) trainer for discrete-action policies, an
// evolution-strategies trainer for continuous deterministic policies, and
// helpers for estimating V/Q values by rolling the simulator forward (the
// quantities needed by the paper's Equation 1 resampling rule).
package rl

// Env is a sequential decision environment with discrete actions.
// Implementations must be deterministic given the seed passed to Reset.
type Env interface {
	// Reset starts a new episode and returns the initial state. The seed
	// selects the episode's randomness (e.g. which bandwidth trace to play).
	Reset(seed int64) []float64
	// Step applies a discrete action and returns the next state, the reward,
	// and whether the episode has ended. After done, Reset must be called.
	Step(action int) (state []float64, reward float64, done bool)
	// StateDim is the dimensionality of states returned by Reset/Step.
	StateDim() int
	// NumActions is the size of the discrete action space.
	NumActions() int
}

// Snapshotter is implemented by environments that can save and restore their
// full state, enabling counterfactual rollouts (used for Q estimation).
type Snapshotter interface {
	// Snapshot captures the complete environment state.
	Snapshot() any
	// Restore rewinds the environment to a previously captured state.
	Restore(snapshot any)
}

// ClonableEnv is implemented by environments that can produce independent
// instances of themselves, enabling parallel trajectory collection. A clone
// shares immutable configuration (videos, traces, topologies) but no mutable
// playback state: clone.Reset(seed) must reproduce exactly the episode the
// original would produce for the same seed.
type ClonableEnv interface {
	Env
	// CloneEnv returns an independent environment with identical
	// configuration.
	CloneEnv() Env
}

// Policy maps a state to a categorical distribution over actions.
type Policy interface {
	// ActionProbs returns the probability of each action in state s. The
	// returned slice may be reused by subsequent calls.
	ActionProbs(s []float64) []float64
}

// ClonablePolicy is implemented by policies that can produce independent
// copies of themselves for concurrent evaluation (network forward passes
// reuse per-instance scratch buffers, so a single instance must never be
// queried from two goroutines). A clone must compute identical action
// probabilities to the original.
type ClonablePolicy interface {
	Policy
	// ClonePolicy returns an independent, behaviorally identical policy.
	ClonePolicy() Policy
}

// Greedy returns the argmax action of p in state s.
func Greedy(p Policy, s []float64) int {
	probs := p.ActionProbs(s)
	best := 0
	for i, v := range probs {
		if v > probs[best] {
			best = i
		}
	}
	return best
}
