package rl

import (
	"math"
	"testing"

	"repro/internal/nn"
)

// chainEnv is a tiny deterministic MDP: the agent walks on a line of length
// n; action 1 moves right (+1 reward at the goal), action 0 moves left.
// Optimal total reward over n steps is 1 (reach goal once, episode ends).
type chainEnv struct {
	n, pos int
	steps  int
}

func (c *chainEnv) Reset(seed int64) []float64 {
	c.pos = 0
	c.steps = 0
	return c.state()
}

func (c *chainEnv) state() []float64 {
	s := make([]float64, c.n)
	s[c.pos] = 1
	return s
}

func (c *chainEnv) Step(a int) ([]float64, float64, bool) {
	c.steps++
	r := -0.01
	if a == 1 {
		c.pos++
	} else if c.pos > 0 {
		c.pos--
	}
	done := false
	if c.pos == c.n-1 {
		r = 1
		done = true
	}
	if c.steps >= 4*c.n {
		done = true
	}
	return c.state(), r, done
}

func (c *chainEnv) StateDim() int   { return c.n }
func (c *chainEnv) NumActions() int { return 2 }

func (c *chainEnv) Snapshot() any { return [2]int{c.pos, c.steps} }
func (c *chainEnv) Restore(s any) {
	v := s.([2]int)
	c.pos, c.steps = v[0], v[1]
}

func TestA2CLearnsChain(t *testing.T) {
	env := &chainEnv{n: 6}
	tr := NewA2C(env.StateDim(), env.NumActions(), 16, 1)
	tr.Train(env, 300, 50, 42)
	score := Evaluate(tr, env, 5, 50, 99)
	// Optimal = 1 - 0.01*4 = 0.96; require clearly-learned behaviour.
	if score < 0.8 {
		t.Fatalf("A2C mean reward %.3f, want ≥0.8", score)
	}
}

func TestA2CRewardsImprove(t *testing.T) {
	env := &chainEnv{n: 5}
	tr := NewA2C(env.StateDim(), env.NumActions(), 16, 2)
	res := tr.Train(env, 200, 40, 7)
	first := mean(res.EpisodeRewards[:20])
	last := mean(res.EpisodeRewards[len(res.EpisodeRewards)-20:])
	if last <= first {
		t.Fatalf("training did not improve: first %.3f last %.3f", first, last)
	}
}

func TestQEstimatorPrefersCorrectAction(t *testing.T) {
	env := &chainEnv{n: 5}
	tr := NewA2C(env.StateDim(), env.NumActions(), 16, 1)
	tr.Train(env, 300, 40, 42)
	env.Reset(0)
	q := &QEstimator{Policy: tr, Gamma: 0.99, Horizon: 30}
	qs := q.QValues(env)
	if qs[1] <= qs[0] {
		t.Fatalf("Q(right)=%.3f should exceed Q(left)=%.3f", qs[1], qs[0])
	}
	if w := q.Weight(env); w <= 0 {
		t.Fatalf("weight = %g, want > 0", w)
	}
	// The counterfactual rollouts must not move the live environment.
	if env.pos != 0 || env.steps != 0 {
		t.Fatalf("QEstimator disturbed env state: pos=%d steps=%d", env.pos, env.steps)
	}
}

func TestGreedyMatchesArgmax(t *testing.T) {
	env := &chainEnv{n: 4}
	tr := NewA2C(env.StateDim(), env.NumActions(), 8, 3)
	s := env.Reset(0)
	probs := tr.ActionProbs(s)
	if Greedy(tr, s) != nn.Argmax(probs) {
		t.Fatal("Greedy disagrees with Argmax of ActionProbs")
	}
}

func TestESOptimizesQuadratic(t *testing.T) {
	// Maximize -(w·x - 3)^2 at fixed x: the net should learn output ≈ 3.
	net := nn.NewNetwork(nn.Config{Sizes: []int{2, 4, 1}, Hidden: nn.Tanh, Output: nn.Identity, Seed: 1})
	x := []float64{1, -1}
	eval := func(n *nn.Network, seed int64) float64 {
		out := n.Forward(x)[0]
		return -(out - 3) * (out - 3)
	}
	es := NewES()
	es.Population = 24
	hist := es.Train(net, eval, 120, 5)
	final := net.Forward(x)[0]
	if math.Abs(final-3) > 0.5 {
		t.Fatalf("ES converged to %.3f, want ≈3 (history tail %.3f)", final, hist[len(hist)-1])
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
