package rl

import (
	"math"
	"math/rand"

	"repro/internal/nn"
)

// A2C trains a softmax policy network and a value (critic) network with the
// advantage actor-critic algorithm, the same optimization family used by
// Pensieve and AuTO's long-flow agent in the paper.
type A2C struct {
	Actor  *nn.Network // softmax output over actions
	Critic *nn.Network // scalar value output

	// Gamma is the discount factor (default 0.99 if zero).
	Gamma float64
	// EntropyWeight encourages exploration (default 0.01 if zero).
	EntropyWeight float64
	// ActorLR / CriticLR are learning rates (defaults 1e-3 / 1e-3).
	ActorLR, CriticLR float64
	// BatchEpisodes is how many episodes are accumulated per gradient step.
	BatchEpisodes int

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
}

// NewA2C constructs an A2C trainer for an environment with the given state
// and action dimensions, using hidden layers of the given width.
func NewA2C(stateDim, numActions, hidden int, seed int64) *A2C {
	return &A2C{
		Actor: nn.NewNetwork(nn.Config{
			Sizes:  []int{stateDim, hidden, hidden, numActions},
			Hidden: nn.ReLU, Output: nn.SoftmaxAct, Seed: seed,
		}),
		Critic: nn.NewNetwork(nn.Config{
			Sizes:  []int{stateDim, hidden, hidden, 1},
			Hidden: nn.ReLU, Output: nn.Identity, Seed: seed + 1,
		}),
		Gamma:         0.99,
		EntropyWeight: 0.01,
		ActorLR:       1e-3,
		CriticLR:      1e-3,
		BatchEpisodes: 4,
	}
}

// ActionProbs implements Policy using the actor network.
func (t *A2C) ActionProbs(s []float64) []float64 {
	out := t.Actor.Forward(s)
	probs := make([]float64, len(out))
	copy(probs, out)
	return probs
}

// Value returns the critic's estimate V(s).
func (t *A2C) Value(s []float64) float64 { return t.Critic.Forward(s)[0] }

// Clone returns a deep copy of the trainer with identical weights and
// hyperparameters but fresh optimizer state and scratch buffers, so the copy
// can act concurrently with the original.
func (t *A2C) Clone() *A2C {
	return &A2C{
		Actor:         t.Actor.Clone(),
		Critic:        t.Critic.Clone(),
		Gamma:         t.Gamma,
		EntropyWeight: t.EntropyWeight,
		ActorLR:       t.ActorLR,
		CriticLR:      t.CriticLR,
		BatchEpisodes: t.BatchEpisodes,
	}
}

// ClonePolicy implements ClonablePolicy.
func (t *A2C) ClonePolicy() Policy { return t.Clone() }

// transition is one step of an episode.
type transition struct {
	state  []float64
	action int
	reward float64
}

// Episode rolls one episode in env with stochastic (sampled) actions and
// returns the trajectory and total reward.
func (t *A2C) episode(env Env, seed int64, rng *rand.Rand, maxSteps int) ([]transition, float64) {
	s := env.Reset(seed)
	var traj []transition
	total := 0.0
	for step := 0; step < maxSteps; step++ {
		probs := t.ActionProbs(s)
		a := nn.Sample(rng, probs)
		next, r, done := env.Step(a)
		traj = append(traj, transition{state: append([]float64(nil), s...), action: a, reward: r})
		total += r
		if done {
			break
		}
		s = next
	}
	return traj, total
}

// TrainResult summarizes one call to Train.
type TrainResult struct {
	// EpisodeRewards holds total reward per training episode, in order.
	EpisodeRewards []float64
}

// Train runs the given number of episodes of on-policy A2C training.
// maxSteps bounds episode length. Training is deterministic given seed.
func (t *A2C) Train(env Env, episodes, maxSteps int, seed int64) TrainResult {
	if t.actorOpt == nil {
		t.actorOpt = nn.NewAdam(t.ActorLR)
		t.criticOpt = nn.NewAdam(t.CriticLR)
	}
	rng := rand.New(rand.NewSource(seed))
	res := TrainResult{}
	batch := t.BatchEpisodes
	if batch <= 0 {
		batch = 1
	}
	for ep := 0; ep < episodes; ep += batch {
		t.Actor.ZeroGrad()
		t.Critic.ZeroGrad()
		n := batch
		if ep+n > episodes {
			n = episodes - ep
		}
		totalSteps := 0
		type labeled struct {
			tr  transition
			ret float64
		}
		var all []labeled
		for b := 0; b < n; b++ {
			traj, total := t.episode(env, seed+int64(ep+b), rng, maxSteps)
			res.EpisodeRewards = append(res.EpisodeRewards, total)
			// Discounted returns.
			g := 0.0
			rets := make([]float64, len(traj))
			for i := len(traj) - 1; i >= 0; i-- {
				g = traj[i].reward + t.Gamma*g
				rets[i] = g
			}
			for i, tr := range traj {
				all = append(all, labeled{tr: tr, ret: rets[i]})
			}
			totalSteps += len(traj)
		}
		if totalSteps == 0 {
			continue
		}
		// Standardize advantages across the batch: with sparse catastrophic
		// rewards (e.g. rebuffering) raw advantages have enormous variance
		// and stall learning.
		advs := make([]float64, len(all))
		vals := make([]float64, len(all))
		meanAdv, m2 := 0.0, 0.0
		for i, l := range all {
			vals[i] = t.Critic.Forward(l.tr.state)[0]
			advs[i] = l.ret - vals[i]
			meanAdv += advs[i]
		}
		meanAdv /= float64(len(all))
		for _, a := range advs {
			m2 += (a - meanAdv) * (a - meanAdv)
		}
		stdAdv := math.Sqrt(m2/float64(len(all))) + 1e-8
		inv := 1.0 / float64(totalSteps)
		for i, l := range all {
			v := vals[i]
			adv := (advs[i] - meanAdv) / stdAdv
			// Actor: policy-gradient step plus entropy bonus.
			probs := t.Actor.Forward(l.tr.state)
			grad := nn.CrossEntropyGrad(probs, l.tr.action, adv*inv)
			// d(-H)/dlogit_i = p_i*(log p_i + H); subtract EntropyWeight * dH.
			h := nn.Entropy(probs)
			for i, p := range probs {
				if p > 1e-12 {
					grad[i] += t.EntropyWeight * inv * p * (math.Log(p) + h)
				}
			}
			t.Actor.Backward(grad)
			// Critic: MSE toward the Monte-Carlo return.
			t.Critic.Forward(l.tr.state)
			t.Critic.Backward([]float64{2 * (v - l.ret) * inv})
		}
		t.Actor.ClipGrad(5)
		t.Critic.ClipGrad(5)
		t.actorOpt.Step(t.Actor)
		t.criticOpt.Step(t.Critic)
	}
	return res
}

// Evaluate runs greedy episodes and returns the mean total reward.
func Evaluate(p Policy, env Env, episodes, maxSteps int, seed int64) float64 {
	total := 0.0
	for ep := 0; ep < episodes; ep++ {
		s := env.Reset(seed + int64(ep))
		for step := 0; step < maxSteps; step++ {
			a := Greedy(p, s)
			next, r, done := env.Step(a)
			total += r
			if done {
				break
			}
			s = next
		}
	}
	return total / float64(episodes)
}
