package rl

import "math"

// QEstimator estimates Q(s,a) and the Equation 1 sampling weight
// V(s) − min_a′ Q(s,a′) by rolling the environment forward under the teacher
// policy. It requires the environment to support Snapshot/Restore so that the
// counterfactual branches do not disturb the live trajectory.
type QEstimator struct {
	// Policy is the teacher whose value is being estimated.
	Policy Policy
	// Gamma is the discount factor used for the rollout returns.
	Gamma float64
	// Horizon bounds the length of each estimation rollout.
	Horizon int
}

// QValues returns the estimated Q(s,a) for every action at the environment's
// current state by snapshotting, taking the action, then following the greedy
// teacher policy for Horizon steps.
//
// The environment must currently be *at* the state of interest (i.e. the next
// Step call applies to that state).
func (q *QEstimator) QValues(env Env) []float64 {
	snap, ok := env.(Snapshotter)
	if !ok {
		panic("rl: QEstimator requires a Snapshotter environment")
	}
	n := env.NumActions()
	out := make([]float64, n)
	saved := snap.Snapshot()
	for a := 0; a < n; a++ {
		snap.Restore(saved)
		s, r, done := env.Step(a)
		g := r
		discount := q.Gamma
		for step := 0; step < q.Horizon && !done; step++ {
			var rr float64
			s, rr, done = env.Step(Greedy(q.Policy, s))
			g += discount * rr
			discount *= q.Gamma
		}
		out[a] = g
	}
	snap.Restore(saved)
	return out
}

// Weight returns the Equation 1 resampling weight
//
//	V(s) − min_a′ Q(s,a′)
//
// at the environment's current state, where V(s) is approximated by
// max_a Q(s,a) (the value of acting greedily). States where a wrong action is
// catastrophic receive large weights; states where all actions are similar
// receive small ones.
func (q *QEstimator) Weight(env Env) float64 {
	qs := q.QValues(env)
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range qs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}
