// Package cliutil holds the small flag helpers shared by the cmd binaries,
// so every main registers and validates common flags identically instead of
// copy-pasting them.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/metis/dtree"
)

// WorkersFlag registers the shared -workers flag on the default flag set.
// Call Workers on the parsed value after flag.Parse.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for the parallel stages (0 = all cores, 1 = serial; results are identical at any setting)")
}

// Workers validates a parsed -workers value: negative counts are rejected
// with exit code 2, mirroring flag-parse failures. 0 (all cores) and
// positive counts pass through.
func Workers(v int) int {
	if v < 0 {
		fmt.Fprintf(os.Stderr, "-workers must be non-negative (got %d)\n", v)
		os.Exit(2)
	}
	return v
}

// SaveLoad holds the parsed shared -save/-load artifact flags.
type SaveLoad struct {
	save, load *string
}

// SaveLoadFlags registers the shared -save/-load artifact flags on the
// default flag set; what names the artifact in the help text ("distilled
// tree", "RouteNet model", …). Call Parsed after flag.Parse.
func SaveLoadFlags(what string) *SaveLoad {
	return &SaveLoad{
		save: flag.String("save", "", "write the "+what+" artifact to this path"),
		load: flag.String("load", "", "load a "+what+" artifact instead of training"),
	}
}

// Parsed validates the flags after flag.Parse and returns their values.
// A combined -save/-load invocation is rejected with exit code 2: -load
// skips the training that would produce the artifact -save names, so
// honoring both would silently write nothing (or not what the user asked
// for).
func (sl *SaveLoad) Parsed() (save, load string) {
	if *sl.save != "" && *sl.load != "" {
		fmt.Fprintln(os.Stderr, "-save and -load are mutually exclusive: -load skips the training that -save would persist")
		os.Exit(2)
	}
	return *sl.save, *sl.load
}

// LoadClassifierTree loads a -load tree artifact for a binary whose system
// consumes stateDim-dimensional states, exiting with a clear message when
// the artifact holds anything else (wrong kind, a regression tree, or a
// tree distilled for a different system).
func LoadClassifierTree(path string, stateDim int, stateDesc string) *dtree.Tree {
	tree, err := artifact.LoadTree(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tree.IsRegression() {
		fmt.Fprintf(os.Stderr, "%s: holds a regression tree, this binary needs a classifier\n", path)
		os.Exit(1)
	}
	if tree.NumFeatures != stateDim {
		fmt.Fprintf(os.Stderr, "%s: tree expects %d features, %s have %d — not a tree for this system\n",
			path, tree.NumFeatures, stateDesc, stateDim)
		os.Exit(1)
	}
	return tree
}

// MustSaveModel writes a -save artifact, exiting on failure and announcing
// the destination on success. what names the model in the printed line.
func MustSaveModel(path string, model any, meta map[string]string, what string) {
	if err := artifact.SaveModel(path, model, meta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("saved %s artifact to %s\n", what, path)
}
