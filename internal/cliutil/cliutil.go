// Package cliutil holds the small flag helpers shared by the cmd binaries,
// so every main registers and validates common flags identically instead of
// copy-pasting them.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/artifact"
	"repro/internal/metis/dtree"
)

// WorkersFlag registers the shared -workers flag on the default flag set.
// Call Workers on the parsed value after flag.Parse.
func WorkersFlag() *int {
	return flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for the parallel stages (0 = all cores, 1 = serial; results are identical at any setting)")
}

// Workers validates a parsed -workers value: negative counts are rejected
// with exit code 2, mirroring flag-parse failures. 0 (all cores) and
// positive counts pass through.
func Workers(v int) int {
	if v < 0 {
		fmt.Fprintf(os.Stderr, "-workers must be non-negative (got %d)\n", v)
		os.Exit(2)
	}
	return v
}

// SaveLoadExclusive rejects a combined -save/-load invocation: -load skips
// the training that would produce the artifact -save names, so honoring
// both would silently write nothing (or not what the user asked for).
func SaveLoadExclusive(save, load string) {
	if save != "" && load != "" {
		fmt.Fprintln(os.Stderr, "-save and -load are mutually exclusive: -load skips the training that -save would persist")
		os.Exit(2)
	}
}

// LoadClassifierTree loads a -load tree artifact for a binary whose system
// consumes stateDim-dimensional states, exiting with a clear message when
// the artifact holds anything else (wrong kind, a regression tree, or a
// tree distilled for a different system).
func LoadClassifierTree(path string, stateDim int, stateDesc string) *dtree.Tree {
	tree, err := artifact.LoadTree(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tree.IsRegression() {
		fmt.Fprintf(os.Stderr, "%s: holds a regression tree, this binary needs a classifier\n", path)
		os.Exit(1)
	}
	if tree.NumFeatures != stateDim {
		fmt.Fprintf(os.Stderr, "%s: tree expects %d features, %s have %d — not a tree for this system\n",
			path, tree.NumFeatures, stateDesc, stateDim)
		os.Exit(1)
	}
	return tree
}

// MustSaveModel writes a -save artifact, exiting on failure and announcing
// the destination on success. what names the model in the printed line.
func MustSaveModel(path string, model any, meta map[string]string, what string) {
	if err := artifact.SaveModel(path, model, meta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("saved %s artifact to %s\n", what, path)
}
