package abr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func testEnv(t testing.TB, kbps float64) *Env {
	t.Helper()
	return NewEnv(Config{
		Video:  StandardVideo(48, 1),
		Traces: []*trace.Trace{trace.Fixed(kbps, 1000)},
	})
}

func TestStateShape(t *testing.T) {
	env := testEnv(t, 3000)
	s := env.Reset(0)
	if len(s) != StateDim {
		t.Fatalf("state dim = %d, want %d", len(s), StateDim)
	}
	names := FeatureNames()
	if len(names) != StateDim {
		t.Fatalf("feature names = %d, want %d", len(names), StateDim)
	}
	if names[FeatLastBitrate] != "r_t" || names[FeatBuffer] != "B" {
		t.Fatalf("unexpected feature names %q %q", names[0], names[1])
	}
	if names[FeatThroughput+HistoryLen-1] != "θ_t" {
		t.Fatalf("newest throughput name = %q, want θ_t", names[FeatThroughput+HistoryLen-1])
	}
}

func TestEpisodeLength(t *testing.T) {
	env := testEnv(t, 3000)
	env.Reset(0)
	steps := 0
	for {
		_, _, done := env.Step(0)
		steps++
		if done {
			break
		}
	}
	if steps != 48 {
		t.Fatalf("episode length = %d chunks, want 48", steps)
	}
}

func TestHighBandwidthNoRebuffer(t *testing.T) {
	env := testEnv(t, 10000)
	res := RunEpisode(env, func(*Env) int { return NumBitrates - 1 }, 0)
	for i, c := range res.Chunks {
		if i > 0 && c.RebufferSec > 0 {
			t.Fatalf("chunk %d rebuffered %.2fs on a 10 Mbps link", i, c.RebufferSec)
		}
	}
}

func TestLowBandwidthHighBitrateRebuffers(t *testing.T) {
	env := testEnv(t, 500)
	res := RunEpisode(env, func(*Env) int { return NumBitrates - 1 }, 0)
	total := 0.0
	for _, c := range res.Chunks {
		total += c.RebufferSec
	}
	if total < 10 {
		t.Fatalf("4300 kbps on a 500 kbps link rebuffered only %.1fs", total)
	}
	if res.MeanQoE() > 0 {
		t.Fatalf("QoE %.2f should be strongly negative under heavy rebuffering", res.MeanQoE())
	}
}

func TestQoEComposition(t *testing.T) {
	env := testEnv(t, 10000)
	env.Reset(0)
	env.Step(0)             // startup chunk: pays the empty-buffer rebuffer, ignore it
	_, r0, _ := env.Step(0) // steady 300 kbps, no switch, no rebuffer
	if math.Abs(r0-0.3) > 0.1 {
		t.Fatalf("steady chunk at 300 kbps reward %.3f, want ≈0.3", r0)
	}
	_, r1, _ := env.Step(5) // switch 300→4300 costs 4.0 smoothness
	want := 4.3 - (4.3 - 0.3)
	if math.Abs(r1-want) > 0.1 {
		t.Fatalf("switch reward %.3f, want ≈%.2f", r1, want)
	}
}

func TestSnapshotRestore(t *testing.T) {
	env := testEnv(t, 2000)
	env.Reset(0)
	env.Step(2)
	snap := env.Snapshot()
	s1, r1, _ := env.Step(3)
	env.Restore(snap)
	s2, r2, _ := env.Step(3)
	if r1 != r2 {
		t.Fatalf("restored step reward %.4f != original %.4f", r2, r1)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("restored state differs at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestBufferCapEnforced(t *testing.T) {
	env := testEnv(t, 50000)
	env.Reset(0)
	for i := 0; i < 47; i++ {
		env.Step(0)
		if env.buffer > env.cfg.BufferCapSec+1e-9 {
			t.Fatalf("buffer %.1f exceeded cap %.1f", env.buffer, env.cfg.BufferCapSec)
		}
	}
}

func TestBaselinesSaneOn3000kbps(t *testing.T) {
	// On a stable 3000 kbps link every heuristic should avoid heavy
	// rebuffering and reach at least 1850 kbps steady state.
	for _, alg := range Baselines() {
		if alg.Name() == "Fixed" {
			continue
		}
		env := testEnv(t, 3000)
		alg.Reset()
		res := RunEpisode(env, AlgorithmSelector(alg), 0)
		reb := 0.0
		for _, c := range res.Chunks {
			reb += c.RebufferSec
		}
		if reb > 5 {
			t.Errorf("%s rebuffered %.1fs on a 3000 kbps link", alg.Name(), reb)
		}
		tail := res.Chunks[len(res.Chunks)/2:]
		maxA := 0
		for _, c := range tail {
			if c.Action > maxA {
				maxA = c.Action
			}
		}
		if maxA < 3 {
			t.Errorf("%s never exceeded bitrate index %d on 3000 kbps", alg.Name(), maxA)
		}
	}
}

func TestBBRespondsToBuffer(t *testing.T) {
	bb := &BB{}
	low := bb.Select(Observation{BufferSec: 1, NextChunkBits: StandardVideo(1, 0).SizesBits[0]})
	high := bb.Select(Observation{BufferSec: 40, NextChunkBits: StandardVideo(1, 0).SizesBits[0]})
	if low != 0 {
		t.Fatalf("BB at 1s buffer chose %d, want 0", low)
	}
	if high != NumBitrates-1 {
		t.Fatalf("BB at 40s buffer chose %d, want max", high)
	}
}

func TestRBFollowsThroughput(t *testing.T) {
	rb := &RB{}
	obs := Observation{ThroughputKbps: []float64{0, 0, 0, 2000, 2000, 2000, 2000, 2000}}
	if got := rb.Select(obs); BitratesKbps[got] > 2000 {
		t.Fatalf("RB chose %v kbps above predicted 2000", BitratesKbps[got])
	}
	obs2 := Observation{ThroughputKbps: []float64{5000, 5000, 5000, 5000, 5000}}
	if got := rb.Select(obs2); got != NumBitrates-1 {
		t.Fatalf("RB with 5 Mbps history chose %d, want max", got)
	}
}

func TestMPCConvergesOnStableLink(t *testing.T) {
	env := testEnv(t, 3000)
	m := &RobustMPC{}
	res := RunEpisode(env, AlgorithmSelector(m), 0)
	tail := res.Chunks[30:]
	for _, c := range tail {
		if c.Action != tail[0].Action {
			t.Skipf("rMPC oscillates late in episode (acceptable on VBR chunks)")
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := harmonicMean([]float64{0, 0, 2, 4}, 5); math.Abs(hm-8.0/3.0) > 1e-9 {
		t.Fatalf("harmonicMean = %v, want 8/3", hm)
	}
	if hm := harmonicMean(nil, 5); hm != 0 {
		t.Fatalf("harmonicMean(nil) = %v, want 0", hm)
	}
}

func TestActionFrequenciesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		env := testEnv(t, 2500)
		res := RunEpisode(env, AlgorithmSelector(&BB{}), seed)
		sum := 0.0
		for _, v := range res.ActionFrequencies() {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestVideoSizesMatchBitrates(t *testing.T) {
	v := StandardVideo(10, 3)
	for k := range v.SizesBits {
		for q := 1; q < NumBitrates; q++ {
			if v.SizesBits[k][q] <= v.SizesBits[k][q-1] {
				t.Fatalf("chunk %d sizes not increasing with bitrate", k)
			}
		}
		nominal := BitratesKbps[0] * 1000 * ChunkSeconds
		if math.Abs(v.SizesBits[k][0]-nominal)/nominal > 0.1 {
			t.Fatalf("chunk %d size %.0f too far from nominal %.0f", k, v.SizesBits[k][0], nominal)
		}
	}
}
