package abr

// ChunkRecord captures one chunk decision during an episode.
type ChunkRecord struct {
	Action      int
	RewardQoE   float64
	RebufferSec float64
	BufferSec   float64
	TimeSec     float64
}

// EpisodeResult summarizes one played episode.
type EpisodeResult struct {
	TotalQoE float64
	Chunks   []ChunkRecord
}

// MeanQoE returns QoE per chunk.
func (r *EpisodeResult) MeanQoE() float64 {
	if len(r.Chunks) == 0 {
		return 0
	}
	return r.TotalQoE / float64(len(r.Chunks))
}

// ActionFrequencies returns the fraction of chunks at each bitrate.
func (r *EpisodeResult) ActionFrequencies() []float64 {
	freq := make([]float64, NumBitrates)
	for _, c := range r.Chunks {
		freq[c.Action]++
	}
	for i := range freq {
		freq[i] /= float64(len(r.Chunks))
	}
	return freq
}

// Selector chooses the next bitrate; both heuristics and distilled policies
// satisfy it through small adapters.
type Selector func(e *Env) int

// AlgorithmSelector adapts a heuristic Algorithm to a Selector.
func AlgorithmSelector(a Algorithm) Selector {
	return func(e *Env) int { return a.Select(e.Observe()) }
}

// PolicySelector adapts a function over the flattened state (e.g. a DNN or
// decision-tree policy) to a Selector.
func PolicySelector(act func(state []float64) int) Selector {
	return func(e *Env) int { return act(e.State()) }
}

// RunEpisode plays one full episode of env with the given selector, starting
// from Reset(seed).
func RunEpisode(env *Env, sel Selector, seed int64) EpisodeResult {
	env.Reset(seed)
	var res EpisodeResult
	for {
		a := sel(env)
		_, r, done := env.Step(a)
		res.TotalQoE += r
		res.Chunks = append(res.Chunks, ChunkRecord{
			Action:      a,
			RewardQoE:   r,
			RebufferSec: env.LastRebufferSec,
			BufferSec:   env.buffer,
			TimeSec:     env.timeSec,
		})
		if done {
			return res
		}
	}
}

// RunTraces plays one episode per seed 0..n-1 (each seed selects a trace)
// and returns the per-episode mean QoE values.
func RunTraces(env *Env, sel Selector, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		res := RunEpisode(env, sel, int64(i))
		out[i] = res.MeanQoE()
	}
	return out
}
