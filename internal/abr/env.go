// Package abr implements the adaptive-bitrate (ABR) video streaming
// environment used by the Pensieve experiments: a chunked video model, a
// client buffer/rebuffering simulator driven by bandwidth traces, the linear
// QoE metric from the paper, and the five heuristic baselines (BB, RB,
// FESTIVE, BOLA, robustMPC) plus a fixed-lowest-bitrate control.
package abr

import (
	"fmt"
	"math/rand"

	"repro/internal/rl"
	"repro/internal/trace"
)

// ChunkSeconds is the playtime of one video chunk.
const ChunkSeconds = 4.0

// BitratesKbps are the six encoding bitrates of the paper's test video.
var BitratesKbps = []float64{300, 750, 1200, 1850, 2850, 4300}

// NumBitrates is the size of the ABR action space.
const NumBitrates = 6

// HistoryLen is how many past chunks of throughput/download-time history the
// Pensieve state carries.
const HistoryLen = 8

// StateDim is the dimensionality of the flattened Pensieve state:
// last bitrate, buffer, 8×throughput, 8×download time, 6×next chunk size,
// remaining chunks.
const StateDim = 2 + 2*HistoryLen + NumBitrates + 1

// Feature indices into the flattened state, used by the decision-tree
// interpretations to print human-readable rules (Fig. 7).
const (
	FeatLastBitrate  = 0 // r_t, normalized by the max bitrate
	FeatBuffer       = 1 // B, seconds / 10
	FeatThroughput   = 2 // θ_t window starts here (newest at +HistoryLen-1)
	FeatDownloadTime = 2 + HistoryLen
	FeatChunkSizes   = 2 + 2*HistoryLen
	FeatRemain       = StateDim - 1
)

// FeatureNames returns a name for each state dimension, matching the symbols
// used in the paper's Figure 7 (r_t, B, θ_t, T_t).
func FeatureNames() []string {
	names := make([]string, StateDim)
	names[FeatLastBitrate] = "r_t"
	names[FeatBuffer] = "B"
	for i := 0; i < HistoryLen; i++ {
		names[FeatThroughput+i] = fmt.Sprintf("θ_t-%d", HistoryLen-1-i)
	}
	names[FeatThroughput+HistoryLen-1] = "θ_t"
	for i := 0; i < HistoryLen; i++ {
		names[FeatDownloadTime+i] = fmt.Sprintf("T_t-%d", HistoryLen-1-i)
	}
	names[FeatDownloadTime+HistoryLen-1] = "T_t"
	for i := 0; i < NumBitrates; i++ {
		names[FeatChunkSizes+i] = fmt.Sprintf("size_%dkbps", int(BitratesKbps[i]))
	}
	names[FeatRemain] = "remain"
	return names
}

// Video is a chunked video with per-chunk, per-bitrate sizes in bits.
type Video struct {
	NumChunks int
	// SizesBits[k][q] is the size in bits of chunk k at quality q.
	SizesBits [][]float64
}

// StandardVideo builds a video of numChunks 4-second chunks whose per-chunk
// sizes vary ±8% around the nominal bitrate·duration, mimicking VBR encoding.
func StandardVideo(numChunks int, seed int64) *Video {
	rng := rand.New(rand.NewSource(seed))
	v := &Video{NumChunks: numChunks, SizesBits: make([][]float64, numChunks)}
	for k := 0; k < numChunks; k++ {
		row := make([]float64, NumBitrates)
		noise := 1 + (rng.Float64()*2-1)*0.08
		for q, br := range BitratesKbps {
			row[q] = br * 1000 * ChunkSeconds * noise
		}
		v.SizesBits[k] = row
	}
	return v
}

// Config parameterizes the ABR environment.
type Config struct {
	Video  *Video
	Traces []*trace.Trace
	// RTTSec is the per-chunk request latency (default 0.08 s).
	RTTSec float64
	// BufferCapSec is the maximum client buffer (default 60 s).
	BufferCapSec float64
	// RebufPenalty is the QoE weight on rebuffering seconds (default 4.3,
	// matching Pensieve's QoE_lin).
	RebufPenalty float64
	// SmoothPenalty weights bitrate switches in Mbps (default 1).
	SmoothPenalty float64
	// RandomStart offsets each episode's start position in the trace.
	RandomStart bool
}

func (c *Config) defaults() {
	if c.RTTSec == 0 {
		c.RTTSec = 0.08
	}
	if c.BufferCapSec == 0 {
		c.BufferCapSec = 60
	}
	if c.RebufPenalty == 0 {
		c.RebufPenalty = 4.3
	}
	if c.SmoothPenalty == 0 {
		c.SmoothPenalty = 1
	}
}

// Env is the ABR environment. It implements rl.Env and rl.Snapshotter.
type Env struct {
	cfg Config

	tr        *trace.Trace
	timeSec   float64
	chunk     int
	buffer    float64
	last      int
	tputHist  []float64 // kbps, newest last
	dtimeHist []float64 // seconds, newest last

	// LastRebufferSec is the rebuffering incurred by the most recent Step.
	LastRebufferSec float64
}

// NewEnv creates an ABR environment from cfg.
func NewEnv(cfg Config) *Env {
	cfg.defaults()
	if cfg.Video == nil {
		panic("abr: Config.Video is required")
	}
	if len(cfg.Traces) == 0 {
		panic("abr: Config.Traces is required")
	}
	return &Env{cfg: cfg}
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

// CloneEnv implements rl.ClonableEnv: the clone shares the immutable video
// model and trace set but carries independent playback state, so clones can
// roll episodes concurrently. Reset fully determines an episode, so a clone
// reproduces the original's trajectories seed-for-seed.
func (e *Env) CloneEnv() rl.Env { return &Env{cfg: e.cfg} }

// StateDim implements rl.Env.
func (e *Env) StateDim() int { return StateDim }

// NumActions implements rl.Env.
func (e *Env) NumActions() int { return NumBitrates }

// Reset implements rl.Env: it selects a trace by seed and restarts playback.
func (e *Env) Reset(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	e.tr = e.cfg.Traces[int(uint64(seed)%uint64(len(e.cfg.Traces)))]
	e.timeSec = 0
	if e.cfg.RandomStart {
		e.timeSec = rng.Float64() * e.tr.Duration()
	}
	e.chunk = 0
	e.buffer = 0
	e.last = 0
	e.tputHist = make([]float64, HistoryLen)
	e.dtimeHist = make([]float64, HistoryLen)
	e.LastRebufferSec = 0
	return e.State()
}

// downloadTime walks the trace from the current time and returns the seconds
// needed to transfer sizeBits, including RTT.
func (e *Env) downloadTime(sizeBits float64) float64 {
	t := e.timeSec
	remaining := sizeBits
	elapsed := e.cfg.RTTSec
	for remaining > 0 {
		bw := e.tr.BandwidthAt(t) * 1000 // bits per second
		if bw <= 0 {
			bw = 1000
		}
		// Time to the next 1-second trace boundary.
		frac := 1 - (t - float64(int(t)))
		if frac <= 0 {
			frac = 1
		}
		canSend := bw * frac
		if canSend >= remaining {
			dt := remaining / bw
			elapsed += dt
			t += dt
			remaining = 0
		} else {
			remaining -= canSend
			elapsed += frac
			t += frac
		}
	}
	return elapsed
}

// Step implements rl.Env: download chunk at quality `action`, advance buffer
// dynamics, and return the per-chunk QoE reward.
func (e *Env) Step(action int) ([]float64, float64, bool) {
	if action < 0 || action >= NumBitrates {
		panic(fmt.Sprintf("abr: invalid action %d", action))
	}
	size := e.cfg.Video.SizesBits[e.chunk][action]
	dt := e.downloadTime(size)
	e.timeSec += dt

	rebuf := 0.0
	if dt > e.buffer {
		rebuf = dt - e.buffer
		e.buffer = 0
	} else {
		e.buffer -= dt
	}
	e.buffer += ChunkSeconds
	if e.buffer > e.cfg.BufferCapSec {
		wait := e.buffer - e.cfg.BufferCapSec
		e.timeSec += wait
		e.buffer = e.cfg.BufferCapSec
	}
	e.LastRebufferSec = rebuf

	tput := size / dt / 1000 // kbps achieved
	e.tputHist = append(e.tputHist[1:], tput)
	e.dtimeHist = append(e.dtimeHist[1:], dt)

	r := BitratesKbps[action]/1000 -
		e.cfg.RebufPenalty*rebuf -
		e.cfg.SmoothPenalty*abs(BitratesKbps[action]-BitratesKbps[e.last])/1000
	e.last = action
	e.chunk++
	done := e.chunk >= e.cfg.Video.NumChunks
	return e.State(), r, done
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// State returns the flattened 25-dim Pensieve state at the current position.
func (e *Env) State() []float64 {
	s := make([]float64, StateDim)
	s[FeatLastBitrate] = BitratesKbps[e.last] / BitratesKbps[NumBitrates-1]
	s[FeatBuffer] = e.buffer / 10
	for i, v := range e.tputHist {
		s[FeatThroughput+i] = v / 1000 // Mbps
	}
	for i, v := range e.dtimeHist {
		s[FeatDownloadTime+i] = v / 10
	}
	k := e.chunk
	if k >= e.cfg.Video.NumChunks {
		k = e.cfg.Video.NumChunks - 1
	}
	for q := 0; q < NumBitrates; q++ {
		s[FeatChunkSizes+q] = e.cfg.Video.SizesBits[k][q] / 8e6 // megabytes
	}
	s[FeatRemain] = float64(e.cfg.Video.NumChunks-e.chunk) / float64(e.cfg.Video.NumChunks)
	return s
}

// Observation is the richer view consumed by heuristic baselines.
type Observation struct {
	LastAction      int
	BufferSec       float64
	ThroughputKbps  []float64 // newest last; zero entries mean "no history yet"
	DownloadTimeSec []float64
	NextChunkBits   []float64
	ChunkIndex      int
	TotalChunks     int
}

// Observe builds the baseline-facing observation for the current position.
func (e *Env) Observe() Observation {
	k := e.chunk
	if k >= e.cfg.Video.NumChunks {
		k = e.cfg.Video.NumChunks - 1
	}
	return Observation{
		LastAction:      e.last,
		BufferSec:       e.buffer,
		ThroughputKbps:  append([]float64(nil), e.tputHist...),
		DownloadTimeSec: append([]float64(nil), e.dtimeHist...),
		NextChunkBits:   append([]float64(nil), e.cfg.Video.SizesBits[k]...),
		ChunkIndex:      e.chunk,
		TotalChunks:     e.cfg.Video.NumChunks,
	}
}

// snapshot captures the full mutable state of the environment.
type snapshot struct {
	tr        *trace.Trace
	timeSec   float64
	chunk     int
	buffer    float64
	last      int
	tputHist  []float64
	dtimeHist []float64
	rebuf     float64
}

// Snapshot implements rl.Snapshotter.
func (e *Env) Snapshot() any {
	return snapshot{
		tr: e.tr, timeSec: e.timeSec, chunk: e.chunk, buffer: e.buffer,
		last:      e.last,
		tputHist:  append([]float64(nil), e.tputHist...),
		dtimeHist: append([]float64(nil), e.dtimeHist...),
		rebuf:     e.LastRebufferSec,
	}
}

// Restore implements rl.Snapshotter.
func (e *Env) Restore(s any) {
	sn := s.(snapshot)
	e.tr = sn.tr
	e.timeSec = sn.timeSec
	e.chunk = sn.chunk
	e.buffer = sn.buffer
	e.last = sn.last
	e.tputHist = append([]float64(nil), sn.tputHist...)
	e.dtimeHist = append([]float64(nil), sn.dtimeHist...)
	e.LastRebufferSec = sn.rebuf
}
