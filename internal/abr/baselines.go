package abr

import "math"

// Algorithm is an ABR policy operating on baseline observations.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Select returns the bitrate index for the next chunk.
	Select(obs Observation) int
	// Reset clears any per-session state.
	Reset()
}

// harmonicMean returns the harmonic mean of the non-zero tail of xs,
// considering at most the last n entries; 0 if no history exists.
func harmonicMean(xs []float64, n int) float64 {
	cnt := 0
	sum := 0.0
	for i := len(xs) - 1; i >= 0 && cnt < n; i-- {
		if xs[i] <= 0 {
			continue
		}
		sum += 1 / xs[i]
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return float64(cnt) / sum
}

// maxBitrateBelow returns the highest quality whose bitrate is at most kbps,
// or 0 if none fits.
func maxBitrateBelow(kbps float64) int {
	best := 0
	for q, br := range BitratesKbps {
		if br <= kbps {
			best = q
		}
	}
	return best
}

// Fixed always selects the lowest bitrate; it is the resource baseline used
// in the Fig. 17(b) footprint comparison.
type Fixed struct{}

// Name implements Algorithm.
func (Fixed) Name() string { return "Fixed" }

// Select implements Algorithm.
func (Fixed) Select(Observation) int { return 0 }

// Reset implements Algorithm.
func (Fixed) Reset() {}

// BB is the buffer-based algorithm of Huang et al. (SIGCOMM 2014): bitrate is
// a piecewise-linear function of buffer occupancy between a reservoir and a
// cushion.
type BB struct {
	// ReservoirSec (default 5) and CushionSec (default 10) shape the map.
	ReservoirSec, CushionSec float64
}

// Name implements Algorithm.
func (*BB) Name() string { return "BB" }

// Reset implements Algorithm.
func (*BB) Reset() {}

// Select implements Algorithm.
func (b *BB) Select(obs Observation) int {
	r, c := b.ReservoirSec, b.CushionSec
	if r == 0 {
		r = 5
	}
	if c == 0 {
		c = 10
	}
	if obs.BufferSec < r {
		return 0
	}
	if obs.BufferSec >= r+c {
		return NumBitrates - 1
	}
	frac := (obs.BufferSec - r) / c
	return int(frac * float64(NumBitrates-1))
}

// RB is the rate-based algorithm: pick the highest bitrate below the harmonic
// mean of recent throughput.
type RB struct{}

// Name implements Algorithm.
func (*RB) Name() string { return "RB" }

// Reset implements Algorithm.
func (*RB) Reset() {}

// Select implements Algorithm.
func (*RB) Select(obs Observation) int {
	pred := harmonicMean(obs.ThroughputKbps, 5)
	if pred == 0 {
		return 0
	}
	return maxBitrateBelow(pred)
}

// Festive implements the FESTIVE algorithm (Jiang et al., CoNEXT 2012):
// rate-based selection with gradual switching and a stability bias.
type Festive struct {
	target  int
	upCount int
	current int
	started bool
}

// Name implements Algorithm.
func (*Festive) Name() string { return "FESTIVE" }

// Reset implements Algorithm.
func (f *Festive) Reset() { *f = Festive{} }

// Select implements Algorithm.
func (f *Festive) Select(obs Observation) int {
	pred := harmonicMean(obs.ThroughputKbps, 5)
	if !f.started {
		f.started = true
		f.current = 0
		return 0
	}
	// Efficiency: target the highest bitrate under 0.85×predicted bandwidth.
	f.target = maxBitrateBelow(0.85 * pred)
	switch {
	case f.target > f.current:
		// Stability: switch up only after k consecutive suggestions, where k
		// scales with the current level (higher levels are stickier).
		f.upCount++
		if f.upCount > f.current+1 {
			f.current++
			f.upCount = 0
		}
	case f.target < f.current:
		f.current--
		f.upCount = 0
	default:
		f.upCount = 0
	}
	return f.current
}

// BOLA implements BOLA (Spiteri et al., INFOCOM 2016): Lyapunov
// utility-versus-buffer optimization with logarithmic chunk utilities.
type BOLA struct {
	// GammaP is the playback-smoothness weight (default 5).
	GammaP float64
	// BufferTargetSec calibrates the control parameter V (default 25).
	BufferTargetSec float64
}

// Name implements Algorithm.
func (*BOLA) Name() string { return "BOLA" }

// Reset implements Algorithm.
func (*BOLA) Reset() {}

// Select implements Algorithm.
func (b *BOLA) Select(obs Observation) int {
	gp := b.GammaP
	if gp == 0 {
		gp = 5
	}
	tgt := b.BufferTargetSec
	if tgt == 0 {
		tgt = 25
	}
	sMin := obs.NextChunkBits[0]
	uMax := math.Log(obs.NextChunkBits[NumBitrates-1] / sMin)
	// Choose V so the max bitrate is attractive when the buffer reaches tgt.
	v := (tgt/ChunkSeconds - 1) / (uMax + gp)
	bufChunks := obs.BufferSec / ChunkSeconds
	best, bestScore := 0, math.Inf(-1)
	for q := 0; q < NumBitrates; q++ {
		u := math.Log(obs.NextChunkBits[q] / sMin)
		score := (v*(u+gp) - bufChunks) / (obs.NextChunkBits[q] / 1e6)
		if score > bestScore {
			bestScore = score
			best = q
		}
	}
	return best
}

// RobustMPC implements the robust model-predictive-control ABR (Yin et al.,
// SIGCOMM 2015): exhaustive search over a 5-chunk horizon using a
// conservatively discounted throughput prediction.
type RobustMPC struct {
	// Horizon is the lookahead in chunks (default 5).
	Horizon int
	// RebufPenalty and SmoothPenalty mirror the environment QoE (defaults
	// 4.3 / 1).
	RebufPenalty, SmoothPenalty float64

	maxErr   float64
	lastPred float64
}

// Name implements Algorithm.
func (*RobustMPC) Name() string { return "rMPC" }

// Reset implements Algorithm.
func (m *RobustMPC) Reset() { m.maxErr, m.lastPred = 0, 0 }

// Select implements Algorithm.
func (m *RobustMPC) Select(obs Observation) int {
	horizon := m.Horizon
	if horizon == 0 {
		horizon = 5
	}
	rp := m.RebufPenalty
	if rp == 0 {
		rp = 4.3
	}
	sp := m.SmoothPenalty
	if sp == 0 {
		sp = 1
	}
	// Track the worst recent prediction error for the robust discount.
	actual := 0.0
	if n := len(obs.ThroughputKbps); n > 0 {
		actual = obs.ThroughputKbps[n-1]
	}
	if m.lastPred > 0 && actual > 0 {
		err := math.Abs(m.lastPred-actual) / actual
		// Exponentially decay the tracked error so old spikes fade.
		m.maxErr = math.Max(err, m.maxErr*0.8)
	}
	pred := harmonicMean(obs.ThroughputKbps, 5)
	m.lastPred = pred
	if pred == 0 {
		return 0
	}
	robust := pred / (1 + m.maxErr)

	if horizon > obs.TotalChunks-obs.ChunkIndex {
		horizon = obs.TotalChunks - obs.ChunkIndex
	}
	if horizon <= 0 {
		return 0
	}
	bestFirst, bestQoE := 0, math.Inf(-1)
	// Exhaustive enumeration of bitrate sequences over the horizon.
	seq := make([]int, horizon)
	var walk func(depth int, buffer float64, last int, qoe float64)
	walk = func(depth int, buffer float64, last int, qoe float64) {
		if depth == horizon {
			if qoe > bestQoE {
				bestQoE = qoe
				bestFirst = seq[0]
			}
			return
		}
		for q := 0; q < NumBitrates; q++ {
			size := obs.NextChunkBits[q] // approximate all horizon chunks by the next chunk's sizes
			dt := size / (robust * 1000)
			reb := 0.0
			nb := buffer
			if dt > nb {
				reb = dt - nb
				nb = 0
			} else {
				nb -= dt
			}
			nb += ChunkSeconds
			stepQoE := BitratesKbps[q]/1000 - rp*reb - sp*math.Abs(BitratesKbps[q]-BitratesKbps[last])/1000
			seq[depth] = q
			walk(depth+1, nb, q, qoe+stepQoE)
		}
	}
	walk(0, obs.BufferSec, obs.LastAction, 0)
	return bestFirst
}

// Baselines returns fresh instances of the five paper baselines plus Fixed.
func Baselines() []Algorithm {
	return []Algorithm{&BB{}, &RB{}, &Festive{}, &BOLA{}, &RobustMPC{}, Fixed{}}
}
