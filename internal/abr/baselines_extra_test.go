package abr

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestFestiveSwitchesGradually(t *testing.T) {
	f := &Festive{}
	f.Reset()
	obs := Observation{
		ThroughputKbps: []float64{5000, 5000, 5000, 5000, 5000},
		NextChunkBits:  StandardVideo(1, 0).SizesBits[0],
	}
	prev := f.Select(obs) // startup chunk
	for i := 0; i < 30; i++ {
		cur := f.Select(obs)
		if cur > prev+1 {
			t.Fatalf("FESTIVE jumped %d→%d in one step", prev, cur)
		}
		prev = cur
	}
	if prev < NumBitrates-2 {
		t.Fatalf("FESTIVE never climbed on a 5 Mbps link (reached %d)", prev)
	}
}

func TestFestiveDropsImmediately(t *testing.T) {
	f := &Festive{}
	f.Reset()
	fast := Observation{ThroughputKbps: []float64{5000, 5000, 5000, 5000, 5000}, NextChunkBits: StandardVideo(1, 0).SizesBits[0]}
	for i := 0; i < 40; i++ {
		f.Select(fast)
	}
	slow := Observation{ThroughputKbps: []float64{400, 400, 400, 400, 400}, NextChunkBits: fast.NextChunkBits}
	before := f.Select(fast)
	after := f.Select(slow)
	if after >= before {
		t.Fatalf("FESTIVE did not step down on a bandwidth drop (%d→%d)", before, after)
	}
}

func TestBOLAPrefersHigherBitrateWithFullerBuffer(t *testing.T) {
	b := &BOLA{}
	sizes := StandardVideo(1, 0).SizesBits[0]
	low := b.Select(Observation{BufferSec: 2, NextChunkBits: sizes})
	high := b.Select(Observation{BufferSec: 40, NextChunkBits: sizes})
	if high < low {
		t.Fatalf("BOLA chose lower bitrate (%d) with a fuller buffer than with an empty one (%d)", high, low)
	}
	if low != 0 {
		t.Fatalf("BOLA with a 2 s buffer chose %d, want 0", low)
	}
}

func TestMPCAvoidsRebufferingAtLowBuffer(t *testing.T) {
	m := &RobustMPC{}
	m.Reset()
	sizes := StandardVideo(1, 0).SizesBits[0]
	obs := Observation{
		BufferSec:      0.5,
		LastAction:     5,
		ThroughputKbps: []float64{1000, 1000, 1000, 1000, 1000},
		NextChunkBits:  sizes,
		TotalChunks:    48,
	}
	if got := m.Select(obs); got > 1 {
		t.Fatalf("rMPC at 0.5 s buffer on a 1 Mbps link picked bitrate index %d", got)
	}
}

func TestAllBaselinesStayInActionRange(t *testing.T) {
	video := StandardVideo(48, 1)
	f := func(seed int64) bool {
		env := NewEnv(Config{Video: video, Traces: trace.HSDPA(3, 200, seed)})
		for _, alg := range Baselines() {
			alg.Reset()
			env.Reset(seed)
			for {
				a := alg.Select(env.Observe())
				if a < 0 || a >= NumBitrates {
					return false
				}
				if _, _, done := env.Step(a); done {
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvRewardMatchesQoEDefinition(t *testing.T) {
	// Property: reward == bitrate/1000 − 4.3·rebuf − |Δbitrate|/1000.
	env := NewEnv(Config{Video: StandardVideo(20, 1), Traces: []*trace.Trace{trace.Fixed(2000, 500)}})
	env.Reset(0)
	last := 0
	for i := 0; i < 20; i++ {
		a := (i * 7) % NumBitrates
		_, r, done := env.Step(a)
		want := BitratesKbps[a]/1000 - 4.3*env.LastRebufferSec - abs(BitratesKbps[a]-BitratesKbps[last])/1000
		if d := r - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("step %d reward %.6f, want %.6f", i, r, want)
		}
		last = a
		if done {
			break
		}
	}
}
