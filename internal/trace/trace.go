// Package trace generates the network bandwidth traces that drive the ABR
// experiments. The paper evaluates on 250 HSDPA (Norway 3G commute) traces
// and 205 FCC broadband traces; those datasets are not redistributable here,
// so this package synthesizes trace families matched to their published
// envelope statistics:
//
//   - HSDPA-like: low mean (≈0.5–3 Mbps), strong temporal correlation,
//     occasional deep fades to near zero (tunnels), 1-second granularity.
//   - FCC-like: higher mean (≈1–6 Mbps), milder variation, short dips.
//   - Fixed: constant bandwidth, used by the §6.3 debugging study.
//
// All generators are deterministic given their seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Trace is a bandwidth series sampled at 1-second intervals.
type Trace struct {
	// Name identifies the trace (family plus index).
	Name string
	// Kbps holds the available bandwidth for each 1-second interval.
	Kbps []float64
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Kbps)) }

// BandwidthAt returns the bandwidth (kbps) at time tSec, wrapping around the
// end of the trace so that arbitrarily long sessions can be simulated.
func (t *Trace) BandwidthAt(tSec float64) float64 {
	if len(t.Kbps) == 0 {
		return 0
	}
	idx := int(tSec) % len(t.Kbps)
	if idx < 0 {
		idx += len(t.Kbps)
	}
	return t.Kbps[idx]
}

// Mean returns the average bandwidth in kbps.
func (t *Trace) Mean() float64 {
	if len(t.Kbps) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.Kbps {
		s += v
	}
	return s / float64(len(t.Kbps))
}

// Fixed returns a constant-bandwidth trace of the given duration.
func Fixed(kbps float64, seconds int) *Trace {
	t := &Trace{Name: fmt.Sprintf("fixed-%.0fkbps", kbps), Kbps: make([]float64, seconds)}
	for i := range t.Kbps {
		t.Kbps[i] = kbps
	}
	return t
}

// family captures the parameters of a synthetic trace family.
type family struct {
	name                 string
	meanLo, meanHi       float64 // per-trace mean drawn uniformly from this range
	vol                  float64 // relative volatility of the OU process
	corr                 float64 // AR(1) correlation coefficient
	fadeProb             float64 // per-second probability of entering a deep fade
	fadeLenLo, fadeLenHi int     // fade duration bounds (seconds)
	floor                float64 // minimum bandwidth (kbps)
}

var hsdpaFamily = family{
	name: "hsdpa", meanLo: 400, meanHi: 3000, vol: 0.55, corr: 0.92,
	fadeProb: 0.015, fadeLenLo: 2, fadeLenHi: 8, floor: 50,
}

var fccFamily = family{
	name: "fcc", meanLo: 800, meanHi: 6000, vol: 0.30, corr: 0.85,
	fadeProb: 0.004, fadeLenLo: 1, fadeLenHi: 3, floor: 150,
}

// generate produces one trace of the family.
func (f family) generate(seconds int, rng *rand.Rand, idx int) *Trace {
	mean := f.meanLo + rng.Float64()*(f.meanHi-f.meanLo)
	t := &Trace{Name: fmt.Sprintf("%s-%03d", f.name, idx), Kbps: make([]float64, seconds)}
	// AR(1) log-space process around the per-trace mean.
	x := 0.0
	fade := 0
	sigma := f.vol * math.Sqrt(1-f.corr*f.corr)
	for i := 0; i < seconds; i++ {
		x = f.corr*x + sigma*rng.NormFloat64()
		bw := mean * math.Exp(x-f.vol*f.vol/2)
		if fade > 0 {
			bw *= 0.05 + 0.1*rng.Float64()
			fade--
		} else if rng.Float64() < f.fadeProb {
			fade = f.fadeLenLo + rng.Intn(f.fadeLenHi-f.fadeLenLo+1)
		}
		if bw < f.floor {
			bw = f.floor
		}
		t.Kbps[i] = bw
	}
	return t
}

// HSDPA returns n synthetic HSDPA-like 3G traces of the given duration.
func HSDPA(n, seconds int, seed int64) []*Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Trace, n)
	for i := range out {
		out[i] = hsdpaFamily.generate(seconds, rng, i)
	}
	return out
}

// FCC returns n synthetic FCC-broadband-like traces of the given duration.
func FCC(n, seconds int, seed int64) []*Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Trace, n)
	for i := range out {
		out[i] = fccFamily.generate(seconds, rng, i)
	}
	return out
}
