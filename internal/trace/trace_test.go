package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedTrace(t *testing.T) {
	tr := Fixed(3000, 10)
	if tr.Duration() != 10 {
		t.Fatalf("duration = %v, want 10", tr.Duration())
	}
	for s := 0.0; s < 25; s += 3.3 {
		if tr.BandwidthAt(s) != 3000 {
			t.Fatalf("BandwidthAt(%v) = %v, want 3000", s, tr.BandwidthAt(s))
		}
	}
	if tr.Mean() != 3000 {
		t.Fatalf("Mean = %v, want 3000", tr.Mean())
	}
}

func TestHSDPADeterministic(t *testing.T) {
	a := HSDPA(3, 100, 42)
	b := HSDPA(3, 100, 42)
	for i := range a {
		for j := range a[i].Kbps {
			if a[i].Kbps[j] != b[i].Kbps[j] {
				t.Fatal("HSDPA generation is not deterministic for the same seed")
			}
		}
	}
	c := HSDPA(3, 100, 43)
	same := true
	for j := range a[0].Kbps {
		if a[0].Kbps[j] != c[0].Kbps[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFamilyEnvelopes(t *testing.T) {
	hs := HSDPA(50, 400, 1)
	fc := FCC(50, 400, 1)
	meanOf := func(ts []*Trace) float64 {
		s := 0.0
		for _, tr := range ts {
			s += tr.Mean()
		}
		return s / float64(len(ts))
	}
	mh, mf := meanOf(hs), meanOf(fc)
	if mh >= mf {
		t.Fatalf("HSDPA mean %.0f should be below FCC mean %.0f", mh, mf)
	}
	if mh < 300 || mh > 3500 {
		t.Fatalf("HSDPA family mean %.0f outside 3G envelope", mh)
	}
	if mf < 800 || mf > 7000 {
		t.Fatalf("FCC family mean %.0f outside broadband envelope", mf)
	}
}

func TestTracesPositive(t *testing.T) {
	f := func(seed int64) bool {
		for _, tr := range HSDPA(2, 120, seed) {
			for _, v := range tr.Kbps {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthWraps(t *testing.T) {
	tr := &Trace{Name: "w", Kbps: []float64{100, 200, 300}}
	if tr.BandwidthAt(4) != 200 {
		t.Fatalf("wrap: BandwidthAt(4) = %v, want 200", tr.BandwidthAt(4))
	}
}

func TestHSDPAHasFades(t *testing.T) {
	traces := HSDPA(20, 600, 9)
	fades := 0
	for _, tr := range traces {
		for _, v := range tr.Kbps {
			if v < tr.Mean()*0.2 {
				fades++
			}
		}
	}
	if fades == 0 {
		t.Fatal("HSDPA family should contain deep fades")
	}
}
