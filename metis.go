// Package metis is the public facade of the Metis reproduction
// ("Interpreting Deep Learning-Based Networking Systems", SIGCOMM 2020).
//
// Metis makes deep-learning-based networking systems interpretable through
// two engines:
//
//   - Local systems (per-device decisions such as ABR bitrate selection or
//     flow scheduling) are converted into decision trees via teacher-student
//     distillation: DAgger-style trajectory collection, advantage-weighted
//     resampling (Equation 1), CART fitting, and cost-complexity pruning.
//     See Distill and the dtree types re-exported below.
//
//   - Global systems (network-wide decisions such as SDN routing) are
//     formulated as hypergraphs, and the critical hyperedge-vertex
//     connections are found by optimizing a fractional incidence mask
//     (Equations 4–9). See CriticalConnections.
//
// The internal packages provide everything the paper's evaluation depends
// on: a pure-Go neural network and RL substrate, the Pensieve/AuTO/RouteNet*
// teacher systems, their simulated environments, interpretation baselines
// (LIME, LEMNA), and a harness that regenerates every table and figure
// (internal/experiments, driven by cmd/metis-exp).
//
// Both engines are unified behind the scenario layer (internal/scenario):
// every domain — the three paper systems plus the appendix scenarios (job
// scheduling, NFV placement, cellular association) — implements one small
// Scenario interface and runs through the same train → distill → evaluate →
// persist pipeline. See Scenarios and RunScenario.
//
// Every compute-heavy stage — CART split search and DAgger rollout
// collection in Distill, the SPSA evaluations in CriticalConnections, and
// the interpretation baselines — runs on the shared worker-pool layer in
// internal/parallel. The Workers field on DistillConfig and MaskOptions
// selects the parallelism (0 = all cores, 1 = serial); results are
// bit-identical for every worker count, so parallelism never changes a
// figure or table.
package metis

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/artifact"
	"repro/internal/metis/dtree"
	"repro/internal/metis/mask"
	"repro/internal/rl"
	"repro/internal/scenario"
	"repro/internal/serve"

	// Register the built-in scenarios (ABR, AuTO lRLA/sRLA, RouteNet*,
	// jobs, NFV, cellular) so RunScenario and Scenarios see them.
	_ "repro/internal/scenarios"
)

// Env is a sequential decision environment (an alias of the internal RL
// environment interface) that local-system distillation rolls trajectories
// in.
type Env = rl.Env

// Policy is a teacher policy mapping states to action distributions.
type Policy = rl.Policy

// Tree is an interpretable decision-tree controller.
type Tree = dtree.Tree

// DistillConfig configures teacher-student decision tree conversion (§3.2).
type DistillConfig = dtree.DistillConfig

// DistillResult is the outcome of a distillation run.
type DistillResult = dtree.DistillResult

// Dataset is a weighted supervised dataset for offline tree fitting.
type Dataset = dtree.Dataset

// Distill converts a DNN teacher policy for a local system into a decision
// tree using the paper's four-step §3.2 recipe.
func Distill(env Env, teacher Policy, cfg DistillConfig) (*DistillResult, error) {
	return dtree.DistillPolicy(env, teacher, cfg)
}

// FitTree fits and prunes a decision tree on an offline dataset; use it for
// regression teachers (e.g. continuous queue thresholds) or pre-collected
// state-action logs.
func FitTree(ds *Dataset, cfg DistillConfig) (*Tree, error) {
	return dtree.FitDataset(ds, cfg)
}

// MaskSystem is a global system whose output can be recomputed under a
// hypergraph connection mask.
type MaskSystem = mask.System

// MaskOptions configures the critical-connection search (§4.2).
type MaskOptions = mask.Options

// MaskResult carries the per-connection mask values.
type MaskResult = mask.Result

// CriticalConnections searches for the hyperedge-vertex connections most
// critical to a global system's output by optimizing Equation 4's objective.
func CriticalConnections(sys MaskSystem, opts MaskOptions) *MaskResult {
	return mask.Search(sys, opts)
}

// CompiledTree is the flattened, allocation-free serving form of a distilled
// tree (§6.4): evaluation walks immutable arrays, so it is lock-free under
// any concurrency, supports bounded-parallelism batch prediction,
// and is what metis-serve deploys and GenerateC offloads.
type CompiledTree = dtree.Compiled

// Compile flattens a distilled tree (classification or regression) into its
// serving representation.
func Compile(t *Tree) (*CompiledTree, error) { return t.Compile() }

// SaveTree writes a distilled tree to path as a versioned, checksummed
// artifact readable by LoadTree and servable by metis-serve. meta is
// free-form; a "name" key names the model in the serving registry.
func SaveTree(path string, t *Tree, meta map[string]string) error {
	return artifact.SaveModel(path, t, meta)
}

// LoadTree restores a tree artifact written by SaveTree (or any binary's
// -save flag).
func LoadTree(path string) (*Tree, error) { return artifact.LoadTree(path) }

// Serve loads every model artifact in dir into a serving registry and
// returns the metis-serve HTTP API (GET /v1/models, GET /v1/models/{name},
// POST /v1/predict, GET /v1/stats, GET /healthz) backed by lock-free
// compiled-tree inference. workers bounds the goroutines used per batch
// prediction (0 = all cores).
func Serve(dir string, workers int) (http.Handler, error) {
	s, err := serve.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	s.Workers = workers
	return s.Handler(), nil
}

// ScenarioConfig carries the generic pipeline knobs: Scale ("tiny", "test",
// "full"), Workers, CacheDir (teacher cache), and OutDir (student artifact +
// manifest destination).
type ScenarioConfig = scenario.Config

// ScenarioReport is the outcome of one pipeline run: the student's kind and
// interpretation summary, evaluation metrics, stage timings, and artifact
// paths.
type ScenarioReport = scenario.Report

// Scenarios lists every registered scenario name. Each runs the same
// teacher→student pipeline: train (or restore) the teacher, distill the
// interpretable student, evaluate both, and optionally persist the student
// with a provenance manifest.
func Scenarios() []string { return scenario.Names() }

// RunScenario drives one registered scenario end to end through the generic
// pipeline.
func RunScenario(name string, cfg ScenarioConfig) (*ScenarioReport, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("metis: unknown scenario %q (registered: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	p := &scenario.Pipeline{Config: cfg}
	return p.Run(sc)
}
