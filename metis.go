// Package metis is the public facade of the Metis reproduction
// ("Interpreting Deep Learning-Based Networking Systems", SIGCOMM 2020).
//
// Metis makes deep-learning-based networking systems interpretable through
// two engines:
//
//   - Local systems (per-device decisions such as ABR bitrate selection or
//     flow scheduling) are converted into decision trees via teacher-student
//     distillation: DAgger-style trajectory collection, advantage-weighted
//     resampling (Equation 1), CART fitting, and cost-complexity pruning.
//     See Distill and the dtree types re-exported below.
//
//   - Global systems (network-wide decisions such as SDN routing) are
//     formulated as hypergraphs, and the critical hyperedge-vertex
//     connections are found by optimizing a fractional incidence mask
//     (Equations 4–9). See CriticalConnections.
//
// The internal packages provide everything the paper's evaluation depends
// on: a pure-Go neural network and RL substrate, the Pensieve/AuTO/RouteNet*
// teacher systems, their simulated environments, interpretation baselines
// (LIME, LEMNA), and a harness that regenerates every table and figure
// (internal/experiments, driven by cmd/metis-exp).
//
// Both engines are unified behind the scenario layer (internal/scenario):
// every domain — the three paper systems plus the appendix scenarios (job
// scheduling, NFV placement, cellular association) — implements one small
// Scenario interface and runs through the same train → distill → evaluate →
// persist pipeline. See Scenarios and RunScenario.
//
// Every compute-heavy stage — CART split search and DAgger rollout
// collection in Distill, the SPSA evaluations in CriticalConnections, and
// the interpretation baselines — runs on the shared worker-pool layer in
// internal/parallel. The Workers field on DistillConfig and MaskOptions
// selects the parallelism (0 = all cores, 1 = serial); results are
// bit-identical for every worker count, so parallelism never changes a
// figure or table.
package metis

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/client"
	"repro/internal/artifact"
	"repro/internal/dataset"
	"repro/internal/metis/dtree"
	"repro/internal/metis/mask"
	"repro/internal/rl"
	"repro/internal/scenario"
	"repro/internal/serve"

	// Register the built-in scenarios (ABR, AuTO lRLA/sRLA, RouteNet*,
	// jobs, NFV, cellular) so RunScenario and Scenarios see them.
	_ "repro/internal/scenarios"
)

// Env is a sequential decision environment (an alias of the internal RL
// environment interface) that local-system distillation rolls trajectories
// in.
type Env = rl.Env

// Policy is a teacher policy mapping states to action distributions.
type Policy = rl.Policy

// Tree is an interpretable decision-tree controller.
type Tree = dtree.Tree

// DistillConfig configures teacher-student decision tree conversion (§3.2).
type DistillConfig = dtree.DistillConfig

// DistillResult is the outcome of a distillation run.
type DistillResult = dtree.DistillResult

// Dataset is a weighted supervised dataset in row-major convenience form —
// the literal-friendly input to FitTree. The training stack itself runs on
// the columnar Table; Dataset is columnarized once on entry.
type Dataset = dtree.Dataset

// Table is the columnar training dataset of the stack: contiguous
// per-feature columns plus label/target/weight columns, with zero-copy
// views for splits, quantile binning for the histogram CART search, and
// deterministic seeded subsampling. Build one with NewTable /
// NewRegressionTable and AppendRow / AppendRegRow, or columnarize existing
// rows with TableFromRows / TableFromRegRows; fit it with FitTreeOnTable.
// Tables persist as versioned artifacts (SaveTable / LoadTable), so a
// distillation corpus can be cached and refit without re-collecting it.
type Table = dataset.Table

// NewTable returns an empty columnar classification dataset.
func NewTable(features int) *Table { return dataset.New(features) }

// NewRegressionTable returns an empty columnar regression dataset.
func NewRegressionTable(features, outputs int) *Table {
	return dataset.NewRegression(features, outputs)
}

// TableFromRows columnarizes row-major classification data (w may be nil
// for uniform weights).
func TableFromRows(X [][]float64, y []int, w []float64) (*Table, error) {
	return dataset.FromRows(X, y, w)
}

// TableFromRegRows columnarizes row-major regression data.
func TableFromRegRows(X [][]float64, targets [][]float64, w []float64) (*Table, error) {
	return dataset.FromRegRows(X, targets, w)
}

// Distill converts a DNN teacher policy for a local system into a decision
// tree using the paper's four-step §3.2 recipe. Set DistillConfig.Histogram
// to use the binned CART split search on large DAgger corpora.
func Distill(env Env, teacher Policy, cfg DistillConfig) (*DistillResult, error) {
	return dtree.DistillPolicy(env, teacher, cfg)
}

// FitTree fits and prunes a decision tree on an offline dataset; use it for
// regression teachers (e.g. continuous queue thresholds) or pre-collected
// state-action logs.
func FitTree(ds *Dataset, cfg DistillConfig) (*Tree, error) {
	return dtree.FitDataset(ds, cfg)
}

// FitTreeOnTable is FitTree on a columnar Table (no conversion pass).
func FitTreeOnTable(t *Table, cfg DistillConfig) (*Tree, error) {
	return dtree.FitTable(t, cfg)
}

// SaveTable persists a columnar dataset as a versioned, checksummed
// artifact (kind "dataset/table").
func SaveTable(path string, t *Table, meta map[string]string) error {
	return artifact.SaveModel(path, t, meta)
}

// LoadTable restores a dataset artifact written by SaveTable.
func LoadTable(path string) (*Table, error) {
	return artifact.LoadAs[*Table](path)
}

// MaskSystem is a global system whose output can be recomputed under a
// hypergraph connection mask.
type MaskSystem = mask.System

// MaskOptions configures the critical-connection search (§4.2).
type MaskOptions = mask.Options

// MaskResult carries the per-connection mask values.
type MaskResult = mask.Result

// CriticalConnections searches for the hyperedge-vertex connections most
// critical to a global system's output by optimizing Equation 4's objective.
func CriticalConnections(sys MaskSystem, opts MaskOptions) *MaskResult {
	return mask.Search(sys, opts)
}

// CompiledTree is the flattened, allocation-free serving form of a distilled
// tree (§6.4): evaluation walks immutable arrays, so it is lock-free under
// any concurrency, supports bounded-parallelism batch prediction,
// and is what metis-serve deploys and GenerateC offloads.
type CompiledTree = dtree.Compiled

// Compile flattens a distilled tree (classification or regression) into its
// serving representation.
func Compile(t *Tree) (*CompiledTree, error) { return t.Compile() }

// QuantizedTree is the bin-quantized serving form of a compiled tree: node
// thresholds are replaced at quantization time by per-feature bin indices
// over flat breadth-first struct-of-arrays storage, so batch traversal is
// branch-light, cache-friendly, and allocation-free — while staying
// bit-identical to the CompiledTree it came from (every original threshold
// becomes a bin edge, so no row can route differently). It is the fastest
// representation metis-serve deploys (kind "dtree/quantized").
type QuantizedTree = dtree.Quantized

// Quantize converts a compiled tree into its quantized serving form. Use
// SaveModel-style persistence via SaveQuantized to serve it.
func Quantize(c *CompiledTree) (*QuantizedTree, error) { return c.Quantize() }

// SaveTree writes a distilled tree to path as a versioned, checksummed
// artifact readable by LoadTree and servable by metis-serve. meta is
// free-form; a "name" key names the model in the serving registry.
func SaveTree(path string, t *Tree, meta map[string]string) error {
	return artifact.SaveModel(path, t, meta)
}

// SaveQuantized writes a quantized tree to path as a versioned, checksummed
// artifact servable by metis-serve (kind "dtree/quantized").
func SaveQuantized(path string, q *QuantizedTree, meta map[string]string) error {
	return artifact.SaveModel(path, q, meta)
}

// LoadQuantized restores a quantized-tree artifact written by SaveQuantized.
func LoadQuantized(path string) (*QuantizedTree, error) {
	return artifact.LoadQuantized(path)
}

// LoadTree restores a tree artifact written by SaveTree (or any binary's
// -save flag).
func LoadTree(path string) (*Tree, error) { return artifact.LoadTree(path) }

// ServeOption customizes a Server built by NewServer.
type ServeOption func(*serveOptions)

type serveOptions struct {
	cfg    serve.Config
	sighup bool
}

// WithWorkers sizes the server-wide inference pool shared by all in-flight
// batch predictions (0 = all cores, 1 = serial). The pool is global to the
// server, not per request: concurrent batches never multiply goroutines.
func WithWorkers(n int) ServeOption {
	return func(o *serveOptions) { o.cfg.Workers = n }
}

// WithMaxBatch caps the rows accepted per prediction request; oversized
// batches are rejected with a typed error (HTTP 413).
func WithMaxBatch(n int) ServeOption {
	return func(o *serveOptions) { o.cfg.MaxBatch = n }
}

// WithMaxInflight caps concurrently admitted prediction requests; beyond it
// the server fails fast with HTTP 503 + Retry-After (the client SDK retries
// those automatically).
func WithMaxInflight(n int) ServeOption {
	return func(o *serveOptions) { o.cfg.MaxInflight = n }
}

// WithReloadOnSIGHUP makes the server hot-reload its artifact directory
// when the process receives SIGHUP (the classic daemon reload convention).
// Call Close to release the signal handler.
func WithReloadOnSIGHUP() ServeOption {
	return func(o *serveOptions) { o.sighup = true }
}

// Server is the embeddable serving runtime: a hot-reloadable model registry
// with the v1+v2 HTTP API (see Handler). Build one with NewServer.
type Server struct {
	engine *serve.Engine
	stop   func()
}

// NewServer loads every model artifact in dir into a serving engine. The
// returned server exposes the metis-serve HTTP API — GET /v2/models[/{name}],
// POST /v2/models/{name}:predict (JSON or the binary batch codec),
// GET /v2/stats, POST /v2/admin/reload, GET /metrics, GET /healthz, plus
// the v1 routes as a compatibility shim — backed by lock-free compiled-tree
// inference.
//
// NewServer replaces the v1 facade call Serve(dir, workers); the per-request
// workers knob became the server-wide WithWorkers pool.
func NewServer(dir string, opts ...ServeOption) (*Server, error) {
	var o serveOptions
	for _, opt := range opts {
		opt(&o)
	}
	engine, err := serve.NewEngine(dir, o.cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{engine: engine, stop: func() {}}
	if o.sighup {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGHUP)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-ch:
					// A failed reload (e.g. half-written artifact) keeps the
					// current generation serving; nothing to do here.
					s.engine.Reload("")
				case <-done:
					return
				}
			}
		}()
		var once sync.Once
		s.stop = func() {
			once.Do(func() {
				signal.Stop(ch)
				close(done)
			})
		}
	}
	return s, nil
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.engine.Handler() }

// Reload hot-swaps the model registry from dir ("" reloads the current
// directory). In-flight predictions finish on the old model set; stats of
// models that survive are carried over.
func (s *Server) Reload(dir string) error { return s.engine.Reload(dir) }

// Models returns the names of the currently served models, sorted.
func (s *Server) Models() []string {
	models := s.engine.Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return names
}

// Close releases the SIGHUP handler installed by WithReloadOnSIGHUP (a
// no-op otherwise). The server keeps serving; only the signal wiring stops.
func (s *Server) Close() { s.stop() }

// Client is the Go SDK for a metis-serve endpoint (re-exported from
// repro/client): typed model listing, single/batch prediction over the
// binary batch codec with JSON fallback, stats, and hot reload, with
// automatic retry on 503.
type Client = client.Client

// NewClient returns a Client for the serving daemon at baseURL.
func NewClient(baseURL string, opts ...client.Option) *Client {
	return client.New(baseURL, opts...)
}

// ScenarioConfig carries the generic pipeline knobs: Scale ("tiny", "test",
// "full"), Workers, CacheDir (teacher cache), and OutDir (student artifact +
// manifest destination).
type ScenarioConfig = scenario.Config

// ScenarioReport is the outcome of one pipeline run: the student's kind and
// interpretation summary, evaluation metrics, stage timings, and artifact
// paths.
type ScenarioReport = scenario.Report

// Scenarios lists every registered scenario name. Each runs the same
// teacher→student pipeline: train (or restore) the teacher, distill the
// interpretable student, evaluate both, and optionally persist the student
// with a provenance manifest.
func Scenarios() []string { return scenario.Names() }

// RunScenario drives one registered scenario end to end through the generic
// pipeline.
func RunScenario(name string, cfg ScenarioConfig) (*ScenarioReport, error) {
	sc, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("metis: unknown scenario %q (registered: %s)", name, strings.Join(scenario.Names(), ", "))
	}
	p := &scenario.Pipeline{Config: cfg}
	return p.Run(sc)
}
