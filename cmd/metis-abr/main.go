// Command metis-abr demonstrates the local-system pipeline end to end:
// train a Pensieve teacher on synthetic HSDPA-like traces, distill it into a
// decision tree with Metis, print the interpretable rules, and compare QoE
// against the classic ABR heuristics.
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/abr"
	"repro/internal/metis/dtree"
	"repro/internal/pensieve"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	traces := flag.Int("traces", 16, "number of synthetic traces")
	episodes := flag.Int("train", 300, "teacher pretraining episodes")
	leaves := flag.Int("leaves", 120, "decision tree leaf budget")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for distillation (1 = serial; results are identical at any setting)")
	flag.Parse()

	env := abr.NewEnv(abr.Config{
		Video:  abr.StandardVideo(48, 1),
		Traces: trace.HSDPA(*traces, 400, 7),
	})

	fmt.Println("training Pensieve teacher…")
	agent := pensieve.NewAgent(2, false)
	pensieve.Pretrain(agent, env, *episodes, 5)
	agent.A2C.Train(env, 2*(*episodes), 50, 6)

	fmt.Println("distilling with Metis (DAgger + Equation 1 resampling + CCP)…")
	res, err := dtree.DistillPolicy(env, agent, dtree.DistillConfig{
		MaxLeaves:       *leaves,
		Iterations:      2,
		EpisodesPerIter: 10,
		MaxSteps:        50,
		Resample:        true,
		QHorizon:        5,
		FeatureNames:    abr.FeatureNames(),
		Seed:            3,
		Workers:         *workers,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tree: %d leaves, depth %d, fidelity %.1f%%, %d bytes\n",
		res.Tree.NumLeaves(), res.Tree.Depth(), 100*res.Fidelity, res.Tree.SizeBytes())
	fmt.Println("\ntop 4 layers (Figure 7 analogue):")
	fmt.Println(res.Tree.Rules(4))

	fmt.Println("mean QoE per chunk over the trace set:")
	for _, alg := range abr.Baselines() {
		alg.Reset()
		q := stats.Mean(abr.RunTraces(env, abr.AlgorithmSelector(alg), *traces))
		fmt.Printf("  %-16s %8.3f\n", alg.Name(), q)
	}
	fmt.Printf("  %-16s %8.3f\n", "Metis+Pensieve", stats.Mean(abr.RunTraces(env, abr.PolicySelector(res.Tree.Predict), *traces)))
	fmt.Printf("  %-16s %8.3f\n", "Pensieve", stats.Mean(abr.RunTraces(env, agent.Selector(), *traces)))
}
