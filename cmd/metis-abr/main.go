// Command metis-abr demonstrates the local-system pipeline end to end:
// train a Pensieve teacher on synthetic HSDPA-like traces, distill it into a
// decision tree with Metis, print the interpretable rules, and compare QoE
// against the classic ABR heuristics.
//
// -save writes the distilled tree as a versioned artifact (servable by
// metis-serve); -load skips teacher training and distillation entirely and
// evaluates a previously saved tree instead.
package main

import (
	"flag"
	"fmt"

	"repro/internal/abr"
	"repro/internal/cliutil"
	"repro/internal/metis/dtree"
	"repro/internal/pensieve"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	traces := flag.Int("traces", 16, "number of synthetic traces")
	episodes := flag.Int("train", 300, "teacher pretraining episodes")
	leaves := flag.Int("leaves", 120, "decision tree leaf budget")
	saveLoad := cliutil.SaveLoadFlags("distilled tree")
	workers := cliutil.WorkersFlag()
	flag.Parse()
	save, load := saveLoad.Parsed()
	w := cliutil.Workers(*workers)

	env := abr.NewEnv(abr.Config{
		Video:  abr.StandardVideo(48, 1),
		Traces: trace.HSDPA(*traces, 400, 7),
	})

	var tree *dtree.Tree
	var agent *pensieve.Agent
	if load != "" {
		tree = cliutil.LoadClassifierTree(load, abr.StateDim, "ABR states")
		fmt.Printf("loaded tree artifact %s: %d leaves, depth %d\n", load, tree.NumLeaves(), tree.Depth())
	} else {
		fmt.Println("training Pensieve teacher…")
		agent = pensieve.NewAgent(2, false)
		pensieve.Pretrain(agent, env, *episodes, 5)
		agent.A2C.Train(env, 2*(*episodes), 50, 6)

		fmt.Println("distilling with Metis (DAgger + Equation 1 resampling + CCP)…")
		res, err := dtree.DistillPolicy(env, agent, dtree.DistillConfig{
			MaxLeaves:       *leaves,
			Iterations:      2,
			EpisodesPerIter: 10,
			MaxSteps:        50,
			Resample:        true,
			QHorizon:        5,
			FeatureNames:    abr.FeatureNames(),
			Seed:            3,
			Workers:         w,
		})
		if err != nil {
			panic(err)
		}
		tree = res.Tree
		fmt.Printf("tree: %d leaves, depth %d, fidelity %.1f%%, %d bytes\n",
			tree.NumLeaves(), tree.Depth(), 100*res.Fidelity, tree.SizeBytes())
		if save != "" {
			cliutil.MustSaveModel(save, tree, map[string]string{"name": "abr", "system": "pensieve"}, "tree")
		}
	}

	fmt.Println("\ntop 4 layers (Figure 7 analogue):")
	fmt.Println(tree.Rules(4))

	fmt.Println("mean QoE per chunk over the trace set:")
	for _, alg := range abr.Baselines() {
		alg.Reset()
		q := stats.Mean(abr.RunTraces(env, abr.AlgorithmSelector(alg), *traces))
		fmt.Printf("  %-16s %8.3f\n", alg.Name(), q)
	}
	fmt.Printf("  %-16s %8.3f\n", "Metis+Pensieve", stats.Mean(abr.RunTraces(env, abr.PolicySelector(tree.Predict), *traces)))
	if agent != nil {
		fmt.Printf("  %-16s %8.3f\n", "Pensieve", stats.Mean(abr.RunTraces(env, agent.Selector(), *traces)))
	}
}
