// Command metis-route demonstrates the global-system pipeline: train a
// RouteNet*-style delay predictor on NSFNet, route a traffic sample with the
// closed-loop optimizer, run the Metis critical-connection search, and print
// the Table 3-style interpretation.
//
// -save writes the trained delay predictor as a versioned artifact; -load
// restores one and skips training. The finished mask search is saved
// alongside it (same path with a .mask.metis suffix) so interpretations can
// be re-examined offline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/cliutil"
	"repro/internal/metis/mask"
	"repro/internal/routenet"
	"repro/internal/routing"
	"repro/internal/topo"

	"repro/internal/experiments"
)

func main() {
	demands := flag.Int("demands", 12, "traffic demands to route")
	gens := flag.Int("gens", 60, "RouteNet training generations")
	iters := flag.Int("iters", 100, "mask optimization iterations")
	saveLoad := cliutil.SaveLoadFlags("trained RouteNet model")
	workers := cliutil.WorkersFlag()
	flag.Parse()
	save, load := saveLoad.Parsed()
	w := cliutil.Workers(*workers)

	g := topo.NSFNet(10)
	var model *routenet.Model
	if load != "" {
		var err error
		if model, err = artifact.LoadAs[*routenet.Model](load); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded RouteNet model artifact %s\n", load)
	} else {
		fmt.Println("training RouteNet* delay predictor on NSFNet…")
		model = routenet.NewModel(41)
		model.Train(g, routenet.TrainConfig{Demands: *demands, Generations: *gens, Seed: 43})
		if save != "" {
			cliutil.MustSaveModel(save, model, map[string]string{"name": "routenet", "topology": "nsfnet"}, "RouteNet model")
		}
	}
	fmt.Printf("model fit: log-delay RMSE %.3f\n", model.Loss(g, routenet.TrainConfig{Demands: *demands}, 999))

	dm := routing.RandomDemands(g, *demands, 3, 9, 900)
	opt := &routenet.Optimizer{Model: model, Graph: g}
	rt := opt.Route(dm)
	delays := (routing.DelayModel{}).Evaluate(g, rt)
	fmt.Println("\nclosed-loop routing result:")
	for i, p := range rt.Paths {
		fmt.Printf("  demand %2d→%-2d (%4.1f Mbps): %-20s  %.2f ms\n",
			dm[i].Src, dm[i].Dst, dm[i].VolumeMbps, p.String(g), delays[i])
	}

	fmt.Println("\nsearching critical connections (Equations 4–9)…")
	sys := &experiments.RouteNetSystem{Opt: opt, Routing: rt}
	res := mask.Search(sys, mask.Options{Lambda1: 0.25, Lambda2: 1, Iterations: *iters, Seed: 7, Workers: w})
	if save != "" {
		maskPath := strings.TrimSuffix(save, ".metis") + ".mask.metis"
		cliutil.MustSaveModel(maskPath, res, map[string]string{"name": "routenet-mask"}, "mask-search result")
	}
	off := routenet.ConnectionOffsets(rt.Paths)
	fmt.Println("top 5 critical (path, link) connections:")
	for rank, ci := range res.TopConnections(5) {
		di, pos := 0, 0
		for i := len(off) - 1; i >= 0; i-- {
			if ci >= off[i] {
				di, pos = i, ci-off[i]
				break
			}
		}
		link := g.Links[rt.Paths[di][pos]]
		fmt.Printf("  #%d path %-20s link %d→%-2d  mask %.3f\n",
			rank+1, rt.Paths[di].String(g), link.Src, link.Dst, res.W[ci])
	}
	fmt.Printf("mask stats: ‖W‖/n=%.3f, H(W)/n=%.3f, D=%.4f\n", res.Norm, res.Entropy, res.Divergence)
}
