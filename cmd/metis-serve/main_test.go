package main

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"minimal", []string{"-dir", "models"}, ""},
		{"all knobs", []string{"-dir", "m", "-addr", ":0", "-workers", "4", "-max-batch", "128", "-max-inflight", "8", "-dispatch-workers", "3"}, ""},
		{"shm with socket", []string{"-dir", "m", "-uds", "/tmp/m.sock", "-shm"}, ""},
		{"shm with segment dir", []string{"-dir", "m", "-uds", "/tmp/m.sock", "-shm", "-shm-dir", "/dev/shm"}, ""},
		{"missing dir", nil, "-dir is required"},
		{"negative workers", []string{"-dir", "m", "-workers", "-1"}, "-workers must be non-negative"},
		{"negative max-batch", []string{"-dir", "m", "-max-batch", "-5"}, "-max-batch must be non-negative"},
		{"negative max-inflight", []string{"-dir", "m", "-max-inflight", "-2"}, "-max-inflight must be non-negative"},
		{"negative dispatch-workers", []string{"-dir", "m", "-dispatch-workers", "-1"}, "-dispatch-workers must be non-negative"},
		{"shm without socket", []string{"-dir", "m", "-shm"}, "-shm requires -uds"},
		{"shm-dir without shm", []string{"-dir", "m", "-uds", "/tmp/m.sock", "-shm-dir", "/dev/shm"}, "-shm-dir requires -shm"},
		{"shadowing on", []string{"-dir", "m", "-shadow-rate", "0.01", "-shadow-dir", "/tmp/shadow"}, ""},
		{"shadow all knobs", []string{"-dir", "m", "-shadow-rate", "1", "-shadow-dir", "s",
			"-shadow-window", "64", "-drift-threshold", "0.95", "-shadow-seed", "7"}, ""},
		{"shadow rate above one", []string{"-dir", "m", "-shadow-rate", "1.5", "-shadow-dir", "s"}, "-shadow-rate must be in [0, 1]"},
		{"shadow rate negative", []string{"-dir", "m", "-shadow-rate", "-0.1", "-shadow-dir", "s"}, "-shadow-rate must be in [0, 1]"},
		{"shadow rate without dir", []string{"-dir", "m", "-shadow-rate", "0.5"}, "-shadow-rate requires -shadow-dir"},
		{"shadow dir without rate", []string{"-dir", "m", "-shadow-dir", "s"}, "-shadow-dir requires -shadow-rate"},
		{"drift threshold out of range", []string{"-dir", "m", "-shadow-rate", "0.5", "-shadow-dir", "s", "-drift-threshold", "2"}, "-drift-threshold must be in [0, 1]"},
		{"drift threshold without shadowing", []string{"-dir", "m", "-drift-threshold", "0.9"}, "-drift-threshold requires -shadow-rate"},
		{"negative shadow window", []string{"-dir", "m", "-shadow-rate", "0.5", "-shadow-dir", "s", "-shadow-window", "-1"}, "-shadow-window must be non-negative"},
		{"shadow window without shadowing", []string{"-dir", "m", "-shadow-window", "64"}, "-shadow-window requires -shadow-rate"},
		{"sharded", []string{"-dir", "m", "-shards", "4"}, ""},
		{"per-core shards", []string{"-dir", "m", "-shards", "0"}, ""},
		{"tenants", []string{"-dir", "m", "-tenants", "teamA:3,teamB:1"}, ""},
		{"tenants with queue", []string{"-dir", "m", "-tenants", "teamA:3,teamB", "-tenant-queue", "32"}, ""},
		{"negative shards", []string{"-dir", "m", "-shards", "-1"}, "-shards must be non-negative"},
		{"bad tenant weight", []string{"-dir", "m", "-tenants", "teamA:0"}, "-tenants:"},
		{"duplicate tenant", []string{"-dir", "m", "-tenants", "a:1,a:2"}, "-tenants:"},
		{"negative tenant-queue", []string{"-dir", "m", "-tenants", "a:1", "-tenant-queue", "-3"}, "-tenant-queue must be non-negative"},
		{"tenant-queue without tenants", []string{"-dir", "m", "-tenant-queue", "8"}, "-tenant-queue requires -tenants"},
		{"stray positional", []string{"-dir", "m", "stray"}, "unexpected arguments"},
		{"unknown flag", []string{"-dir", "m", "-frobnicate"}, "not defined"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v", tc.args, err)
				}
				if cfg.dir == "" {
					t.Fatal("dir not captured")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) err = %v, want %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-dir", "models"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9090" || cfg.maxBatch != 0 || cfg.inflight != 0 || cfg.workers <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestParseFlagsHelp(t *testing.T) {
	if _, err := parseFlags([]string{"-h"}, io.Discard); err != flag.ErrHelp {
		t.Fatalf("-h err = %v, want flag.ErrHelp", err)
	}
}

// TestHTTPServerTimeouts: the daemon's listener must not be
// slowloris-exposed — header reads and idle keep-alives are bounded.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", nil)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadHeaderTimeout > time.Minute {
		t.Fatalf("ReadHeaderTimeout = %v", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout = %v", srv.IdleTimeout)
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Fatalf("MaxHeaderBytes = %v", srv.MaxHeaderBytes)
	}
}
