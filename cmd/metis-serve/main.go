// Command metis-serve is the deployment daemon: it loads a directory of
// Metis model artifacts (distilled or compiled decision trees, written by
// the -save flags of the other binaries or by metis-exp -cache) and serves
// predictions over HTTP off the lock-free compiled-tree representation.
//
// Quickstart:
//
//	go run ./examples/quickstart -save models/quickstart.metis
//	metis-serve -dir models -addr :9090
//	curl -s localhost:9090/v1/models
//	curl -s -X POST localhost:9090/v1/predict \
//	     -d '{"model":"quickstart","x":[2,1]}'
//
// Endpoints: GET /healthz, GET /v1/models, GET /v1/models/{name},
// POST /v1/predict (single "x" or batch "xs"), GET /v1/stats.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get up to 5 seconds to finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	dir := flag.String("dir", "", "artifact directory to serve (required)")
	addr := flag.String("addr", ":9090", "listen address")
	workers := cliutil.WorkersFlag()
	flag.Parse()

	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	s, err := serve.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Workers = cliutil.Workers(*workers)

	for _, m := range s.Models() {
		shape := fmt.Sprintf("%d classes", m.Compiled.NumClasses)
		if m.Compiled.IsRegression() {
			shape = fmt.Sprintf("%d outputs", m.Compiled.OutDim)
		}
		fmt.Printf("loaded %-20s %s, %d nodes, %d features, %s\n",
			m.Name, m.Kind, m.Compiled.NumNodes(), m.Compiled.NumFeatures, shape)
	}
	for _, skip := range s.Skipped() {
		fmt.Printf("skipped %s: not a servable kind\n", skip)
	}
	fmt.Printf("serving %d models on %s\n", len(s.Models()), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// Listener failure (port in use, …) before any signal.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Println("signal received, draining in-flight requests…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("bye")
	}
}
