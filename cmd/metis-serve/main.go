// Command metis-serve is the deployment daemon: it loads a directory of
// Metis model artifacts (distilled or compiled decision trees, written by
// the -save flags of the other binaries, by metis-exp -cache, or by the
// scenario pipeline's -out) and serves predictions over HTTP off the
// lock-free compiled-tree representation.
//
// Quickstart:
//
//	go run ./examples/quickstart -save models/quickstart.metis
//	metis-serve -dir models -addr :9090
//	curl -s localhost:9090/v2/models
//	curl -s -X POST localhost:9090/v2/models/quickstart:predict \
//	     -d '{"x":[2,1]}'
//
// Endpoints: GET /healthz, GET /v2/models[/{name}],
// POST /v2/models/{name}:predict (JSON or application/x-metis-batch),
// GET /v2/stats, POST /v2/admin/reload, GET /metrics — plus the v1 routes
// as a compatibility shim.
//
// With -uds /path.sock the daemon additionally serves the framed binary
// protocol on a unix-domain socket: the same binary batch payloads without
// the HTTP machinery, for co-located clients that need the full in-process
// prediction rate (client.New("unix:///path.sock") speaks it).
//
// Hot reload: SIGHUP (or POST /v2/admin/reload) re-scans the artifact
// directory and swaps the model registry atomically — in-flight requests
// finish on the old model set, stats of surviving models carry over, and a
// failed reload (e.g. a half-written artifact) keeps the old set serving.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get up to 5 seconds to finish, and the process exits 0.
//
// Continuous distillation: with -shadow-rate > 0 the daemon mirrors a
// deterministic sample of predict traffic to a shadow loop that re-scores it
// against each model's teacher (resolved from scenario metadata; pre-cache
// teachers and corpora with metis-exp -cache pointed at -shadow-dir). When a
// model's windowed fidelity drops below -drift-threshold the loop refits the
// student from its corpus, hot-reloads the new generation with lineage
// metadata, and auto-rolls back if the refit measures worse. See the
// "Operating Metis" section of the README.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/shadow"

	// Register the scenarios so shadow.EnrollScenarios can resolve a served
	// model's teacher from its artifact metadata.
	_ "repro/internal/scenarios"
)

// config is the parsed command line.
type config struct {
	dir             string
	addr            string
	uds             string
	shm             bool
	shmDir          string
	workers         int
	dispatchWorkers int
	maxBatch        int
	inflight        int
	shards          int
	tenants         string
	tenantQueue     int
	shadowRate      float64
	shadowDir       string
	shadowWindow    int
	driftThreshold  float64
	shadowSeed      int64
}

// parseFlags parses args (not including the program name) into a config.
// Errors are returned, not printed, so main owns the exit path and tests
// can cover the validation.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("metis-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.dir, "dir", "", "artifact directory to serve (required)")
	fs.StringVar(&cfg.addr, "addr", ":9090", "listen address")
	fs.StringVar(&cfg.uds, "uds", "",
		"also serve the framed binary protocol on this unix socket path (for co-located clients; see client.New(\"unix://…\"))")
	fs.BoolVar(&cfg.shm, "shm", false,
		"allow socket connections to negotiate per-connection shared-memory ring segments (zero-syscall predict path; requires -uds)")
	fs.StringVar(&cfg.shmDir, "shm-dir", "",
		"directory for shared-memory segment files (default /dev/shm when present, else the temp dir)")
	fs.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0),
		"server-wide inference pool shared by all in-flight batches (0 = all cores, 1 = serial)")
	fs.IntVar(&cfg.dispatchWorkers, "dispatch-workers", 0,
		"per-connection decode/encode workers of the pipelined socket mode (0 = 2, growing with cores up to 4); distinct from -workers, which sizes inference")
	fs.IntVar(&cfg.maxBatch, "max-batch", 0,
		fmt.Sprintf("max rows per prediction request (0 = %d)", serve.DefaultMaxBatch))
	fs.IntVar(&cfg.inflight, "max-inflight", 0,
		"max concurrently admitted prediction requests; beyond it requests fail fast with 503 (0 = unlimited)")
	fs.IntVar(&cfg.shards, "shards", 1,
		"per-core engine shards; models are partitioned across them by consistent hash (1 = the classic single engine, 0 = one shard per core)")
	fs.StringVar(&cfg.tenants, "tenants", "",
		"weighted fair admission as name:weight pairs, e.g. \"teamA:3,teamB:1\" (tenant = X-Metis-Tenant header, else the model name; unknown tenants get weight 1)")
	fs.IntVar(&cfg.tenantQueue, "tenant-queue", 0,
		fmt.Sprintf("max queued requests per tenant under overload before 503 (0 = %d)", serve.DefaultTenantQueue))
	fs.Float64Var(&cfg.shadowRate, "shadow-rate", 0,
		"fraction of predict batches shadow-scored against the teacher (0 = shadowing off, 1 = every batch)")
	fs.StringVar(&cfg.shadowDir, "shadow-dir", "",
		"shadow state directory: cached teachers/corpora are read from it (metis-exp -cache), generation archives are written to it (required with -shadow-rate)")
	fs.IntVar(&cfg.shadowWindow, "shadow-window", 0,
		fmt.Sprintf("fidelity window in shadow-scored rows (0 = %d)", shadow.DefaultWindow))
	fs.Float64Var(&cfg.driftThreshold, "drift-threshold", 0,
		fmt.Sprintf("windowed fidelity below which the student is refitted from its corpus (0 = %g)", shadow.DefaultDriftThreshold))
	fs.Int64Var(&cfg.shadowSeed, "shadow-seed", 1,
		"seed of the deterministic shadow sampler")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.dir == "" {
		fs.Usage()
		return nil, errors.New("-dir is required")
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("-workers must be non-negative (got %d)", cfg.workers)
	}
	if cfg.maxBatch < 0 {
		return nil, fmt.Errorf("-max-batch must be non-negative (got %d)", cfg.maxBatch)
	}
	if cfg.inflight < 0 {
		return nil, fmt.Errorf("-max-inflight must be non-negative (got %d)", cfg.inflight)
	}
	if cfg.dispatchWorkers < 0 {
		return nil, fmt.Errorf("-dispatch-workers must be non-negative (got %d)", cfg.dispatchWorkers)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("-shards must be non-negative (got %d)", cfg.shards)
	}
	if cfg.tenants != "" {
		if _, err := serve.ParseTenantWeights(cfg.tenants); err != nil {
			return nil, fmt.Errorf("-tenants: %w", err)
		}
	}
	if cfg.tenantQueue < 0 {
		return nil, fmt.Errorf("-tenant-queue must be non-negative (got %d)", cfg.tenantQueue)
	}
	if cfg.tenantQueue > 0 && cfg.tenants == "" {
		return nil, errors.New("-tenant-queue requires -tenants")
	}
	if cfg.shm && cfg.uds == "" {
		return nil, errors.New("-shm requires -uds (segments are negotiated over the socket)")
	}
	if cfg.shmDir != "" && !cfg.shm {
		return nil, errors.New("-shm-dir requires -shm")
	}
	if cfg.shadowRate < 0 || cfg.shadowRate > 1 {
		return nil, fmt.Errorf("-shadow-rate must be in [0, 1] (got %g)", cfg.shadowRate)
	}
	if cfg.shadowRate > 0 && cfg.shadowDir == "" {
		return nil, errors.New("-shadow-rate requires -shadow-dir (cached teachers and generation archives live there)")
	}
	if cfg.shadowDir != "" && cfg.shadowRate == 0 {
		return nil, errors.New("-shadow-dir requires -shadow-rate > 0")
	}
	if cfg.driftThreshold < 0 || cfg.driftThreshold > 1 {
		return nil, fmt.Errorf("-drift-threshold must be in [0, 1] (got %g)", cfg.driftThreshold)
	}
	if cfg.driftThreshold > 0 && cfg.shadowRate == 0 {
		return nil, errors.New("-drift-threshold requires -shadow-rate > 0")
	}
	if cfg.shadowWindow < 0 {
		return nil, fmt.Errorf("-shadow-window must be non-negative (got %d)", cfg.shadowWindow)
	}
	if cfg.shadowWindow > 0 && cfg.shadowRate == 0 {
		return nil, errors.New("-shadow-window requires -shadow-rate > 0")
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

// newHTTPServer wraps the engine handler with the daemon's protective
// timeouts: ReadHeaderTimeout bounds slow-header (slowloris) clients and
// IdleTimeout reaps idle keep-alive connections. No WriteTimeout — large
// batch responses are legitimate, and the engine bounds request size
// instead.
func newHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	engineCfg := serve.Config{
		Workers: cfg.workers, MaxBatch: cfg.maxBatch, MaxInflight: cfg.inflight,
		DispatchWorkers: cfg.dispatchWorkers, SHMDir: cfg.shmDir,
	}
	// -shards 1 with no tenant weights serves through the classic single
	// engine, byte-identical to previous releases; anything else goes
	// through the sharded front (which also owns weighted fair admission).
	var engine serve.Backend
	if cfg.shards == 1 && cfg.tenants == "" {
		engine, err = serve.NewEngine(cfg.dir, engineCfg)
	} else {
		engineCfg.Shards = cfg.shards
		engineCfg.TenantQueue = cfg.tenantQueue
		engineCfg.Tenants, _ = serve.ParseTenantWeights(cfg.tenants)
		var sharded *serve.ShardedEngine
		if sharded, err = serve.NewShardedEngine(cfg.dir, engineCfg); err == nil {
			fmt.Printf("sharded engine: %d shards", sharded.ShardCount())
			if len(engineCfg.Tenants) > 0 {
				fmt.Printf(", %d weighted tenants", len(engineCfg.Tenants))
			}
			fmt.Println()
		}
		engine = sharded
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, m := range engine.Models() {
		shape := fmt.Sprintf("%d classes", m.NumClasses())
		if m.IsRegression() {
			shape = fmt.Sprintf("%d outputs", m.OutDim())
		}
		fmt.Printf("loaded %-20s %s, %d nodes, %d features, %s\n",
			m.Name, m.Kind, m.NumNodes(), m.NumFeatures(), shape)
	}
	for _, skip := range engine.Skipped() {
		fmt.Printf("skipped %s: not a servable kind\n", skip)
	}
	fmt.Printf("serving %d models on %s (SIGHUP or POST /v2/admin/reload to hot-reload)\n",
		len(engine.Models()), cfg.addr)

	if cfg.shadowRate > 0 {
		mon := shadow.NewMonitor(engine, shadow.Options{
			Rate:           cfg.shadowRate,
			Seed:           cfg.shadowSeed,
			Window:         cfg.shadowWindow,
			DriftThreshold: cfg.driftThreshold,
			Dir:            cfg.shadowDir,
			Workers:        cfg.workers,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		n, err := shadow.EnrollScenarios(mon)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n == 0 {
			fmt.Println("shadow: no served model carries scenario metadata — shadowing idle")
		}
		mon.Start()
		defer mon.Close()
	}

	// SIGHUP → hot reload of the artifact directory.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := engine.Reload(""); err != nil {
				fmt.Fprintln(os.Stderr, "reload failed, keeping current models:", err)
				continue
			}
			fmt.Printf("reloaded %s: %d models\n", engine.Dir(), len(engine.Models()))
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := newHTTPServer(cfg.addr, engine.Handler())
	errCh := make(chan error, 1)
	var udsListener net.Listener
	if cfg.uds != "" {
		udsListener, err = serve.ListenUDS(cfg.uds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		serveSocket := engine.ServeUDS
		if cfg.shm {
			serveSocket = engine.ServeSHM
			fmt.Printf("framed binary protocol on unix://%s (shared-memory rings enabled)\n", cfg.uds)
		} else {
			fmt.Printf("framed binary protocol on unix://%s\n", cfg.uds)
		}
		go func() {
			if err := serveSocket(udsListener); err != nil {
				errCh <- err
			}
		}()
	}
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// Listener failure (port in use, …) before any signal.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Println("signal received, draining in-flight requests…")
		if udsListener != nil {
			// Closing the unix listener unlinks the socket file; in-flight
			// framed connections finish their current frame and end when the
			// peer disconnects or the process exits below.
			udsListener.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("bye")
	}
}
