// Command metis-dcn demonstrates the AuTO pipeline: train the long-flow
// agent on the fabric simulator, distill it, and compare flow completion
// times and decision latencies between the DNN and the tree. Tree decision
// latency is measured on the compiled (flattened, allocation-free)
// representation — the form metis-serve deploys.
//
// -save writes the distilled tree as a versioned artifact; -load skips
// training and distillation and evaluates a previously saved tree.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/auto"
	"repro/internal/cliutil"
	"repro/internal/dcn"
	"repro/internal/metis/dtree"
)

func main() {
	flows := flag.Int("flows", 400, "flows per fabric run")
	gens := flag.Int("gens", 10, "ES training generations")
	saveLoad := cliutil.SaveLoadFlags("distilled tree")
	workers := cliutil.WorkersFlag()
	flag.Parse()
	save, load := saveLoad.Parsed()
	w := cliutil.Workers(*workers)

	var tree *dtree.Tree
	var lrla *auto.LRLA
	if load != "" {
		tree = cliutil.LoadClassifierTree(load, dcn.LongFlowStateDim, "DCN long-flow states")
		fmt.Printf("loaded tree artifact %s: %d leaves\n", load, tree.NumLeaves())
	} else {
		fmt.Println("training AuTO lRLA on the web-search workload…")
		lrla = auto.NewLRLA(21)
		auto.TrainLRLA(lrla, auto.TrainConfig{Workload: dcn.WebSearch, FlowsPerRun: *flows, Generations: *gens, Seed: 23})

		fmt.Println("collecting decisions and distilling…")
		states, actions := auto.CollectLRLADataset(lrla, dcn.WebSearch, 4, 31)
		var err error
		tree, err = dtree.FitDataset(&dtree.Dataset{X: states, Y: actions}, dtree.DistillConfig{
			MaxLeaves: 2000, FeatureNames: auto.LongFlowStateNames(), Workers: w,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("tree: %d leaves from %d decisions\n", tree.NumLeaves(), len(states))
		if save != "" {
			cliutil.MustSaveModel(save, tree, map[string]string{"name": "dcn", "system": "auto-lrla"}, "tree")
		}
	}

	run := func(name string, agent dcn.Agent) {
		fl := dcn.GenerateFlows(dcn.WebSearch, *flows, 16, dcn.DefaultCapBps, 0.6, 99)
		fab := dcn.NewFabric(dcn.Config{LongFlowAgent: agent})
		fab.Run(fl)
		s := dcn.ComputeFCTStats(fl)
		fmt.Printf("  %-12s avg FCT %.3fms  p99 %.3fms  (%d agent decisions)\n",
			name, 1000*s.Mean, 1000*s.P99, fab.Decisions)
	}
	fmt.Println("fabric runs (identical workload):")
	if lrla != nil {
		run("AuTO", lrla)
	}
	run("Metis+AuTO", agentFunc(tree.Predict))

	// Decision latency on the deployment hot path: the compiled tree.
	compiled, err := tree.Compile()
	if err != nil {
		panic(err)
	}
	state := make([]float64, dcn.LongFlowStateDim)
	state[0], state[1] = 6, 7
	timeIt := func(decide func([]float64) int) time.Duration {
		t0 := time.Now()
		for i := 0; i < 10000; i++ {
			decide(state)
		}
		return time.Since(t0) / 10000
	}
	tr := timeIt(compiled.Predict)
	if lrla != nil {
		dnn := timeIt(lrla.Decide)
		fmt.Printf("decision latency: DNN %v vs compiled tree %v (%.0f× faster; paper: 26.8×)\n",
			dnn, tr, float64(dnn)/float64(tr))
	} else {
		fmt.Printf("decision latency: compiled tree %v\n", tr)
	}
}

// agentFunc adapts a function to dcn.Agent.
type agentFunc func([]float64) int

// Decide implements dcn.Agent.
func (f agentFunc) Decide(state []float64) int { return f(state) }
