// Command metis-dcn demonstrates the AuTO pipeline: train the long-flow
// agent on the fabric simulator, distill it, and compare flow completion
// times and decision latencies between the DNN and the tree.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/auto"
	"repro/internal/dcn"
	"repro/internal/metis/dtree"
)

func main() {
	flows := flag.Int("flows", 400, "flows per fabric run")
	gens := flag.Int("gens", 10, "ES training generations")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for tree fitting (1 = serial; results are identical at any setting)")
	flag.Parse()

	fmt.Println("training AuTO lRLA on the web-search workload…")
	lrla := auto.NewLRLA(21)
	auto.TrainLRLA(lrla, auto.TrainConfig{Workload: dcn.WebSearch, FlowsPerRun: *flows, Generations: *gens, Seed: 23})

	fmt.Println("collecting decisions and distilling…")
	states, actions := auto.CollectLRLADataset(lrla, dcn.WebSearch, 4, 31)
	tree, err := dtree.FitDataset(&dtree.Dataset{X: states, Y: actions}, dtree.DistillConfig{
		MaxLeaves: 2000, FeatureNames: auto.LongFlowStateNames(), Workers: *workers,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("tree: %d leaves from %d decisions\n", tree.NumLeaves(), len(states))

	run := func(name string, agent dcn.Agent) {
		fl := dcn.GenerateFlows(dcn.WebSearch, *flows, 16, dcn.DefaultCapBps, 0.6, 99)
		fab := dcn.NewFabric(dcn.Config{LongFlowAgent: agent})
		fab.Run(fl)
		s := dcn.ComputeFCTStats(fl)
		fmt.Printf("  %-12s avg FCT %.3fms  p99 %.3fms  (%d agent decisions)\n",
			name, 1000*s.Mean, 1000*s.P99, fab.Decisions)
	}
	fmt.Println("fabric runs (identical workload):")
	run("AuTO", lrla)
	run("Metis+AuTO", agentFunc(tree.Predict))

	// Decision latency.
	state := states[0]
	t0 := time.Now()
	for i := 0; i < 10000; i++ {
		lrla.Decide(state)
	}
	dnn := time.Since(t0) / 10000
	t0 = time.Now()
	for i := 0; i < 10000; i++ {
		tree.Predict(state)
	}
	tr := time.Since(t0) / 10000
	fmt.Printf("decision latency: DNN %v vs tree %v (%.0f× faster; paper: 26.8×)\n",
		dnn, tr, float64(dnn)/float64(tr))
}

// agentFunc adapts a function to dcn.Agent.
type agentFunc func([]float64) int

// Decide implements dcn.Agent.
func (f agentFunc) Decide(state []float64) int { return f(state) }
