package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/metis/dtree"
	"repro/internal/serve"
)

func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"all knobs", []string{"-addr", "unix:///tmp/x.sock", "-models", "a:2,b", "-rate", "500",
			"-arrival", "fixed", "-duration", "1s", "-batch", "8", "-workers", "2", "-conns", "1", "-seed", "9",
			"-transport", "shm", "-json", "out.json"}, ""},
		{"zero rate", []string{"-rate", "0"}, "-rate must be positive"},
		{"bad transport", []string{"-transport", "tcp"}, "-transport must be uds or shm"},
		{"shm over http", []string{"-addr", "http://localhost:9090", "-transport", "shm"}, "-transport shm requires a unix:// -addr"},
		{"bad arrival", []string{"-arrival", "bursty"}, "-arrival must be poisson or fixed"},
		{"zero duration", []string{"-duration", "0s"}, "-duration must be positive"},
		{"zero batch", []string{"-batch", "0"}, "must be positive"},
		{"replicas", []string{"-replicas", "http://a:9090, http://b:9090"}, ""},
		{"replicas non-http", []string{"-replicas", "unix:///tmp/x.sock"}, "-replicas entries must be http(s)"},
		{"replicas over shm", []string{"-addr", "unix:///tmp/x.sock", "-transport", "shm",
			"-replicas", "http://a:9090"}, "-replicas is HTTP-only"},
		{"stray positional", []string{"stray"}, "unexpected arguments"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) err = %v, want %q", tc.args, err, tc.wantErr)
			}
		})
	}
	if _, err := parseFlags([]string{"-h"}, io.Discard); err != flag.ErrHelp {
		t.Fatalf("-h err = %v, want flag.ErrHelp", err)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("abr:3, dcn ,x:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].weight != 3 || mix[1].name != "dcn" || mix[1].weight != 1 || mix[2].weight != 0.5 {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "a:-1", "a:zero"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

// reportValue pulls one "key value" line out of a run report.
func reportValue(t *testing.T, report, key string) float64 {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if rest, ok := strings.CutPrefix(line, key+" "); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				t.Fatalf("unparsable %s line %q: %v", key, line, err)
			}
			return v
		}
	}
	t.Fatalf("report has no %q line:\n%s", key, report)
	return 0
}

// TestRunAgainstLiveDaemon offers a short burst of open-loop load to a real
// engine over the framed socket and checks the report: traffic flowed, the
// quantiles are present and ordered, and the per-model counts add up.
func TestRunAgainstLiveDaemon(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	ds := &dtree.Dataset{}
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > x[1] {
			y = 1
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	tree, err := dtree.Build(ds, dtree.BuildOptions{MaxLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.SaveModel(filepath.Join(dir, "abr.metis"), tree, map[string]string{"name": "abr"}); err != nil {
		t.Fatal(err)
	}
	e, err := serve.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "metis.sock")
	l, err := serve.ListenUDS(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go e.ServeUDS(l)

	cfg := &config{
		addr:     "unix://" + sock,
		rate:     2000,
		arrival:  "poisson",
		duration: 300 * time.Millisecond,
		batch:    4,
		workers:  2,
		conns:    1,
		seed:     7,
	}
	var out bytes.Buffer
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()

	total := reportValue(t, report, "requests_total")
	ok := reportValue(t, report, "requests_ok")
	if total < 100 || ok < 100 {
		t.Fatalf("only %g requests scheduled, %g ok:\n%s", total, ok, report)
	}
	if failed := reportValue(t, report, "requests_failed"); failed != 0 {
		t.Fatalf("%g requests failed:\n%s", failed, report)
	}
	if tput := reportValue(t, report, "throughput_preds_per_s"); tput <= 0 {
		t.Fatalf("throughput_preds_per_s = %g", tput)
	}
	p50 := reportValue(t, report, "latency_p50_us")
	p99 := reportValue(t, report, "latency_p99_us")
	p999 := reportValue(t, report, "latency_p999_us")
	max := reportValue(t, report, "latency_max_us")
	if p50 <= 0 || p50 > p99 || p99 > p999 || p999 > max {
		t.Fatalf("quantiles out of order: p50=%g p99=%g p999=%g max=%g", p50, p99, p999, max)
	}
	if modelReqs := reportValue(t, report, "model_requests abr"); modelReqs != ok {
		t.Fatalf("model_requests abr = %g, requests_ok = %g", modelReqs, ok)
	}
	if !strings.Contains(report, "hist_us ") {
		t.Fatalf("report has no histogram lines:\n%s", report)
	}

	// Fixed-rate arrivals against the same daemon, mix given explicitly.
	cfg.arrival = "fixed"
	cfg.models = "abr:2"
	out.Reset()
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	if ok := reportValue(t, out.String(), "requests_ok"); ok < 100 {
		t.Fatalf("fixed-rate run completed only %g requests", ok)
	}

	// A mix naming an unserved model must fail fast.
	cfg.models = "ghost"
	if err := run(context.Background(), cfg, io.Discard.(io.Writer)); err == nil {
		t.Fatal("run accepted a mix naming an unserved model")
	}
}

// TestRunSharedMemoryTransport drives a shared-memory-enabled daemon with
// -transport shm and -json: traffic rides the rings (the engine reports a
// live shm connection), nothing fails, and the JSON record matches the
// benchmark-file schema with a positive preds/s.
func TestRunSharedMemoryTransport(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	ds := &dtree.Dataset{}
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > x[1] {
			y = 1
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	tree, err := dtree.Build(ds, dtree.BuildOptions{MaxLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.SaveModel(filepath.Join(dir, "abr.metis"), tree, map[string]string{"name": "abr"}); err != nil {
		t.Fatal(err)
	}
	e, err := serve.NewEngine(dir, serve.Config{SHMDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "metis.sock")
	l, err := serve.ListenUDS(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go e.ServeSHM(l)

	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	cfg := &config{
		addr:      "unix://" + sock,
		transport: "shm",
		rate:      2000,
		arrival:   "poisson",
		duration:  300 * time.Millisecond,
		batch:     4,
		workers:   2,
		conns:     1,
		seed:      7,
		jsonPath:  jsonPath,
	}
	var out bytes.Buffer
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if ok := reportValue(t, report, "requests_ok"); ok < 100 {
		t.Fatalf("shm run completed only %g requests:\n%s", ok, report)
	}
	if failed := reportValue(t, report, "requests_failed"); failed != 0 {
		t.Fatalf("%g requests failed over shm:\n%s", failed, report)
	}
	if e.SHMConns() == 0 {
		t.Fatal("no shared-memory connection established — the loadgen fell back to frames")
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Date    string `json:"date"`
		Go      string `json:"go"`
		Results []struct {
			Name       string           `json:"name"`
			Iterations int64            `json:"iterations"`
			NsPerOp    int64            `json:"ns_per_op"`
			PredsPerS  float64          `json:"preds/s"`
			Failed     int64            `json:"failed"`
			Transport  string           `json:"transport"`
			Models     map[string]int64 `json:"models"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("-json record is not valid JSON: %v\n%s", err, data)
	}
	if rec.Date == "" || rec.Go == "" || len(rec.Results) != 1 {
		t.Fatalf("record shape: %+v", rec)
	}
	res := rec.Results[0]
	if res.Name != "LoadgenPredictBatch/shm" || res.Iterations < 100 ||
		res.NsPerOp <= 0 || res.PredsPerS <= 0 || res.Failed != 0 {
		t.Fatalf("record result: %+v", res)
	}
	// The record must identify the transport and the realized per-model mix,
	// which for a single-model run is every completed request.
	if res.Transport != "shm" {
		t.Fatalf("record transport = %q, want shm", res.Transport)
	}
	if res.Models["abr"] != res.Iterations {
		t.Fatalf("record models = %v, want abr = %d", res.Models, res.Iterations)
	}
}
