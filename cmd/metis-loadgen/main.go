// Command metis-loadgen drives a metis-serve endpoint with open-loop load
// and reports the latency distribution. Open-loop means arrivals follow a
// schedule (Poisson or fixed-rate) that does NOT slow down when the server
// does — latency is measured from each request's scheduled arrival, so queue
// wait under overload is part of the number, the way it is for real traffic.
//
// Quickstart against a local daemon:
//
//	metis-serve -dir models -uds /tmp/metis.sock &
//	metis-loadgen -addr unix:///tmp/metis.sock -rate 2000 -duration 5s
//
// The traffic mix defaults to every served model with equal weight; -models
// "abr:3,dcn:1" sends abr three times as often as dcn. Requests fan out over
// -workers goroutines sharing one SDK client (the client multiplexes over
// -conns pipelined socket connections against a v2 server); every request is
// a -batch row binary-codec batch of uniform random feature rows.
//
// Output is one "key value" pair per line (model_requests and hist_us carry
// two values), so a script can pick off p99 with awk:
//
//	requests_total 9983
//	throughput_preds_per_s 79432.1
//	latency_p50_us 412
//	latency_p99_us 1873
//	latency_p999_us 3541
//	hist_us 447 1021        ← count of requests with latency ≤ 447µs bucket
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/histo"
)

// config is the parsed command line.
type config struct {
	addr      string
	replicas  string
	transport string
	models    string
	rate      float64
	arrival   string
	duration  time.Duration
	batch     int
	workers   int
	conns     int
	seed      int64
	jsonPath  string
}

// parseFlags parses args (not including the program name) into a config.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("metis-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", "unix:///tmp/metis.sock",
		"endpoint: unix:///path.sock for the framed socket, or an http:// base URL")
	fs.StringVar(&cfg.replicas, "replicas", "",
		"comma-separated http:// base URLs of equivalent replicas; requests go to the least-loaded one not currently shedding (overrides -addr; implies -transport http)")
	fs.StringVar(&cfg.transport, "transport", "uds",
		"socket transport: uds (pipelined v2 frames) or shm (negotiate shared-memory rings; needs a unix:// -addr and a server started with -shm)")
	fs.StringVar(&cfg.models, "models", "",
		"traffic mix as name[:weight],… (default: every served model, equal weight)")
	fs.Float64Var(&cfg.rate, "rate", 1000, "offered load in requests per second")
	fs.StringVar(&cfg.arrival, "arrival", "poisson", "arrival process: poisson or fixed")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to offer load")
	fs.IntVar(&cfg.batch, "batch", 16, "rows per predict request")
	fs.IntVar(&cfg.workers, "workers", 8, "request-issuing goroutines")
	fs.IntVar(&cfg.conns, "conns", 2, "multiplexed socket connections (unix:// endpoints)")
	fs.Int64Var(&cfg.seed, "seed", 1, "RNG seed for arrivals, mix, and feature rows")
	fs.StringVar(&cfg.jsonPath, "json", "",
		"also write the report as a BENCH_LOADGEN-style JSON record to this path")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.transport != "uds" && cfg.transport != "shm" {
		return nil, fmt.Errorf("-transport must be uds or shm (got %q)", cfg.transport)
	}
	if cfg.replicas != "" {
		for _, r := range strings.Split(cfg.replicas, ",") {
			if r = strings.TrimSpace(r); !strings.HasPrefix(r, "http://") && !strings.HasPrefix(r, "https://") {
				return nil, fmt.Errorf("-replicas entries must be http(s) base URLs (got %q)", r)
			}
		}
		if cfg.transport == "shm" {
			return nil, errors.New("-replicas is HTTP-only and cannot combine with -transport shm")
		}
		cfg.transport = "http"
	}
	if cfg.transport == "shm" && !strings.HasPrefix(cfg.addr, "unix://") {
		return nil, errors.New("-transport shm requires a unix:// -addr (rings are negotiated over the socket)")
	}
	if cfg.rate <= 0 {
		return nil, fmt.Errorf("-rate must be positive (got %g)", cfg.rate)
	}
	if cfg.arrival != "poisson" && cfg.arrival != "fixed" {
		return nil, fmt.Errorf("-arrival must be poisson or fixed (got %q)", cfg.arrival)
	}
	if cfg.duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive (got %v)", cfg.duration)
	}
	if cfg.batch <= 0 || cfg.workers <= 0 || cfg.conns <= 0 {
		return nil, fmt.Errorf("-batch, -workers, and -conns must be positive")
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

// mixEntry is one model in the traffic mix with its pre-generated request
// rows (shared read-only across workers) and live request count.
type mixEntry struct {
	name   string
	weight float64
	rows   [][]float64
	count  atomic.Int64
}

// parseMix splits "name[:weight],…" into (name, weight) pairs.
func parseMix(spec string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		weight := 1.0
		if hasWeight {
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad weight in mix entry %q", part)
			}
			weight = w
		}
		out = append(out, mixEntry{name: name, weight: weight})
	}
	if len(out) == 0 {
		return nil, errors.New("empty -models mix")
	}
	return out, nil
}

// buildMix resolves the traffic mix against the server's model list and
// fills each entry's request rows with uniform random features of the
// model's width.
func buildMix(ctx context.Context, c *client.Client, cfg *config, rng *rand.Rand) ([]*mixEntry, error) {
	served, err := c.Models(ctx)
	if err != nil {
		return nil, fmt.Errorf("list models: %w", err)
	}
	width := make(map[string]int, len(served))
	for _, m := range served {
		width[m.Name] = m.Features
	}
	var mix []mixEntry
	if cfg.models == "" {
		for _, m := range served {
			mix = append(mix, mixEntry{name: m.Name, weight: 1})
		}
		if len(mix) == 0 {
			return nil, errors.New("server lists no models")
		}
	} else if mix, err = parseMix(cfg.models); err != nil {
		return nil, err
	}
	out := make([]*mixEntry, len(mix))
	for i := range mix {
		m := &mix[i]
		w, ok := width[m.name]
		if !ok {
			return nil, fmt.Errorf("model %q is not served", m.name)
		}
		m.rows = make([][]float64, cfg.batch)
		for r := range m.rows {
			row := make([]float64, w)
			for f := range row {
				row[f] = rng.Float64()
			}
			m.rows[r] = row
		}
		out[i] = m
	}
	return out, nil
}

// pickModel draws one mix entry by weight.
func pickModel(mix []*mixEntry, total float64, rng *rand.Rand) *mixEntry {
	x := rng.Float64() * total
	for _, m := range mix {
		if x -= m.weight; x < 0 {
			return m
		}
	}
	return mix[len(mix)-1]
}

// job is one scheduled arrival. Latency is measured from scheduled, not from
// when a worker got around to sending — that difference IS the queueing the
// open-loop model exists to expose.
type job struct {
	scheduled time.Time
	m         *mixEntry
}

// report is one finished run's numbers, decoupled from how they are
// rendered: writeText emits the "key value" lines scripts scrape, writeJSON
// the BENCH_LOADGEN record matching the BENCH_SERVE schema (date/go/results
// with a preds-per-second metric), so a CI run can diff load-generator
// throughput across PRs the same way it diffs the microbenchmarks.
type report struct {
	cfg     *config
	total   int
	failed  int64
	dropped int64
	elapsed time.Duration
	hist    *histo.Histogram
	mix     []*mixEntry
}

func (r *report) ok() int64 { return int64(r.hist.Count()) }

func (r *report) predsPerSec() float64 {
	return float64(r.ok()*int64(r.cfg.batch)) / r.elapsed.Seconds()
}

func (r *report) writeText(out io.Writer) {
	h := r.hist
	us := func(ns int64) int64 { return ns / 1e3 }
	fmt.Fprintf(out, "requests_total %d\n", r.total)
	fmt.Fprintf(out, "requests_ok %d\n", r.ok())
	fmt.Fprintf(out, "requests_failed %d\n", r.failed)
	fmt.Fprintf(out, "requests_dropped %d\n", r.dropped)
	fmt.Fprintf(out, "elapsed_s %.3f\n", r.elapsed.Seconds())
	fmt.Fprintf(out, "throughput_req_per_s %.1f\n", float64(r.ok())/r.elapsed.Seconds())
	fmt.Fprintf(out, "throughput_preds_per_s %.1f\n", r.predsPerSec())
	fmt.Fprintf(out, "latency_mean_us %.1f\n", h.Mean()/1e3)
	fmt.Fprintf(out, "latency_p50_us %d\n", us(h.Quantile(0.50)))
	fmt.Fprintf(out, "latency_p90_us %d\n", us(h.Quantile(0.90)))
	fmt.Fprintf(out, "latency_p99_us %d\n", us(h.Quantile(0.99)))
	fmt.Fprintf(out, "latency_p999_us %d\n", us(h.Quantile(0.999)))
	fmt.Fprintf(out, "latency_max_us %d\n", us(h.Max()))
	for _, m := range r.mix {
		fmt.Fprintf(out, "model_requests %s %d\n", m.name, m.count.Load())
	}
	for _, b := range h.Buckets() {
		fmt.Fprintf(out, "hist_us %d %d\n", us(b.Le), b.Count)
	}
}

// writeJSON renders the run as one result row in the benchmark-record shape
// bench.sh emits ({date, go, benchtime, results:[{name, iterations,
// ns_per_op, metrics…}]}): iterations is completed requests, ns_per_op the
// mean scheduled-to-done latency.
func (r *report) writeJSON(path string) error {
	h := r.hist
	us := func(ns int64) int64 { return ns / 1e3 }
	// The transport and the realized per-model mix are part of the record:
	// two runs are only comparable when both match, and the mix answers
	// whether weighted traffic actually split as configured.
	models := make(map[string]int64, len(r.mix))
	for _, m := range r.mix {
		models[m.name] = m.count.Load()
	}
	rec := map[string]any{
		"date":      time.Now().Format("2006-01-02"),
		"go":        runtime.Version(),
		"benchtime": r.cfg.duration.String(),
		"results": []map[string]any{{
			"name":       "LoadgenPredictBatch/" + r.cfg.transport,
			"iterations": r.ok(),
			"ns_per_op":  int64(h.Mean()),
			"preds/s":    r.predsPerSec(),
			"req/s":      float64(r.ok()) / r.elapsed.Seconds(),
			"batch":      r.cfg.batch,
			"rate":       r.cfg.rate,
			"p50_us":     us(h.Quantile(0.50)),
			"p99_us":     us(h.Quantile(0.99)),
			"p999_us":    us(h.Quantile(0.999)),
			"failed":     r.failed,
			"dropped":    r.dropped,
			"transport":  r.cfg.transport,
			"models":     models,
		}},
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// run offers the configured load and writes the report to out.
func run(ctx context.Context, cfg *config, out io.Writer) error {
	opts := []client.Option{client.WithConns(cfg.conns)}
	if cfg.transport == "shm" {
		opts = append(opts, client.WithSharedMemory())
	}
	addr := cfg.addr
	if cfg.replicas != "" {
		var bases []string
		for _, r := range strings.Split(cfg.replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				bases = append(bases, r)
			}
		}
		addr = bases[0]
		opts = append(opts, client.WithReplicas(bases))
	}
	c := client.New(addr, opts...)
	rng := rand.New(rand.NewSource(cfg.seed))
	mix, err := buildMix(ctx, c, cfg, rng)
	if err != nil {
		return err
	}
	var totalWeight float64
	for _, m := range mix {
		totalWeight += m.weight
	}

	var (
		dropped atomic.Int64
		failed  atomic.Int64
		jobs    = make(chan job, 8192)
		hists   = make([]*histo.Histogram, cfg.workers)
		wg      sync.WaitGroup
	)
	for w := 0; w < cfg.workers; w++ {
		h := histo.New()
		hists[w] = h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := c.PredictBatch(ctx, j.m.name, j.m.rows); err != nil {
					failed.Add(1)
					continue
				}
				h.Record(time.Since(j.scheduled).Nanoseconds())
				j.m.count.Add(1)
			}
		}()
	}

	// The scheduler: walk the arrival schedule in absolute time. When the
	// clock is ahead of the schedule (a stall pushed us behind) requests
	// fire back-to-back until the schedule catches up — open loop, no
	// coordinated omission. A full queue means the server and workers are
	// hopelessly behind the offered rate; those arrivals are counted
	// dropped rather than silently stretching the schedule.
	start := time.Now()
	deadline := start.Add(cfg.duration)
	next := start
	interval := time.Duration(float64(time.Second) / cfg.rate)
	total := 0
	for next.Before(deadline) && ctx.Err() == nil {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		total++
		j := job{scheduled: next, m: pickModel(mix, totalWeight, rng)}
		select {
		case jobs <- j:
		default:
			dropped.Add(1)
		}
		if cfg.arrival == "poisson" {
			next = next.Add(time.Duration(rng.ExpFloat64() * float64(interval)))
		} else {
			next = next.Add(interval)
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return err
	}

	h := histo.New()
	for _, wh := range hists {
		h.Merge(wh)
	}
	r := &report{
		cfg: cfg, total: total, failed: failed.Load(), dropped: dropped.Load(),
		elapsed: elapsed, hist: h, mix: mix,
	}
	r.writeText(out)
	if cfg.jsonPath != "" {
		if err := r.writeJSON(cfg.jsonPath); err != nil {
			return fmt.Errorf("write -json record: %w", err)
		}
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
