// Command metis-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	metis-exp -exp fig7            # one experiment
//	metis-exp -exp all             # everything
//	metis-exp -list                # list experiment ids
//	metis-exp -exp fig15a -scale full
//
// Experiment identifiers follow the paper's numbering (fig7, fig9, fig11,
// fig12, fig12b, fig12c, fig13, fig14, fig15a, fig15b, fig16a, fig16b,
// fig17a, fig17b, fig18, fig20, fig27, fig28, fig29, fig31, table3, table5).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	scale := flag.String("scale", "test", "scale: test (seconds) or full (minutes)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the parallel stages (1 = serial; results are identical at any setting)")
	list := flag.Bool("list", false, "list available experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	s := experiments.TestScale
	if *scale == "full" {
		s = experiments.FullScale
	}
	f := experiments.NewFixture(s)
	f.Workers = *workers

	run := func(name string) {
		runner, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res := runner(f)
		fmt.Printf("=== %s (scale %s, %v) ===\n%s\n", name, s.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if *exp == "all" {
		for _, name := range experiments.Names() {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
