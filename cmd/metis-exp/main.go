// Command metis-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	metis-exp -exp fig7            # one experiment
//	metis-exp -exp all             # everything
//	metis-exp -list                # list experiment ids
//	metis-exp -exp fig15a -scale full
//	metis-exp -exp all -cache ~/.cache/metis   # reuse trained teachers
//
// With -cache, every trained teacher (Pensieve, AuTO lRLA/sRLA, RouteNet*)
// and the AuTO distilled trees are persisted as versioned artifacts in the
// given directory; later runs at the same scale load them instead of
// retraining, and the run ends with a "cache:" summary line showing how many
// teachers were trained versus loaded.
//
// Experiment identifiers follow the paper's numbering (fig7, fig9, fig11,
// fig12, fig12b, fig12c, fig13, fig14, fig15a, fig15b, fig16a, fig16b,
// fig17a, fig17b, fig18, fig20, fig27, fig28, fig29, fig31, table3, table5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	scale := flag.String("scale", "test", "scale: test (seconds) or full (minutes)")
	cache := flag.String("cache", "", "artifact cache directory: trained teachers persist across runs")
	workers := cliutil.WorkersFlag()
	list := flag.Bool("list", false, "list available experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	s := experiments.TestScale
	if *scale == "full" {
		s = experiments.FullScale
	}
	f := experiments.NewFixture(s)
	f.Workers = cliutil.Workers(*workers)
	if *cache != "" {
		if err := os.MkdirAll(*cache, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create cache directory: %v\n", err)
			os.Exit(1)
		}
		f.CacheDir = *cache
	}

	run := func(name string) {
		runner, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res := runner(f)
		fmt.Printf("=== %s (scale %s, %v) ===\n%s\n", name, s.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if *exp == "all" {
		for _, name := range experiments.Names() {
			run(name)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(name))
		}
	}
	if f.CacheDir != "" {
		fmt.Printf("cache: %d teachers trained, %d artifacts loaded from %s\n",
			f.TeachersTrained, f.CacheHits, f.CacheDir)
	}
}
