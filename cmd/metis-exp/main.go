// Command metis-exp regenerates the paper's tables and figures, and drives
// the generic scenario pipeline over every registered domain.
//
// Usage:
//
//	metis-exp -exp fig7            # one experiment
//	metis-exp -exp all             # everything
//	metis-exp -list                # list experiment ids
//	metis-exp -exp fig15a -scale full
//	metis-exp -exp all -cache ~/.cache/metis   # reuse trained teachers
//
//	metis-exp -scenario abr               # one teacher→student pipeline run
//	metis-exp -scenario all -scale tiny   # every scenario, seconds total
//	metis-exp -scenario jobs,nfv -out models   # persist students + manifests
//	metis-exp -list-scenarios
//
// With -cache, every trained teacher (Pensieve, AuTO lRLA/sRLA, RouteNet*,
// and the scenario pipeline's teachers) is persisted as a versioned artifact
// in the given directory; later runs at the same scale load them instead of
// retraining. With -out, each scenario run writes its student model and a
// pipeline manifest (provenance record) as artifacts servable or
// inspectable by metis-serve.
//
// Scales: figures accept test (seconds) and full (minutes); scenarios
// additionally accept tiny (the whole -scenario all sweep finishes in
// seconds).
//
// Experiment identifiers follow the paper's numbering (fig7, fig9, fig11,
// fig12, fig12b, fig12c, fig13, fig14, fig15a, fig15b, fig16a, fig16b,
// fig17a, fig17b, fig18, fig20, fig27, fig28, fig29, fig31, table3, table5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/scenario"
	_ "repro/internal/scenarios" // register the built-in scenarios
)

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	scen := flag.String("scenario", "", "scenario name, comma list, or 'all': run the teacher→student pipeline")
	scale := flag.String("scale", "test", "scale: test (seconds) or full (minutes); scenarios also accept tiny")
	cache := flag.String("cache", "", "artifact cache directory: trained teachers persist across runs")
	out := flag.String("out", "", "scenario runs: write student + manifest artifacts to this directory")
	workers := cliutil.WorkersFlag()
	list := flag.Bool("list", false, "list available experiment ids")
	listScen := flag.Bool("list-scenarios", false, "list registered scenario names")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *listScen {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Get(name)
			fmt.Printf("%-12s %s\n", name, sc.Describe())
		}
		return
	}
	if (*exp == "") == (*scen == "") {
		fmt.Fprintln(os.Stderr, "set exactly one of -exp (figures/tables) or -scenario (pipeline runs); see -list and -list-scenarios")
		flag.Usage()
		os.Exit(2)
	}
	w := cliutil.Workers(*workers)
	if *cache != "" {
		if err := os.MkdirAll(*cache, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create cache directory: %v\n", err)
			os.Exit(1)
		}
	}

	if *scen != "" {
		runScenarios(*scen, *scale, *cache, *out, w)
		return
	}

	s := experiments.TestScale
	switch *scale {
	case "test":
	case "full":
		s = experiments.FullScale
	default:
		fmt.Fprintf(os.Stderr, "-exp supports scales test and full (got %q)\n", *scale)
		os.Exit(2)
	}
	f := experiments.NewFixture(s)
	f.Workers = w
	f.CacheDir = *cache

	run := func(name string) {
		runner, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", name)
			os.Exit(2)
		}
		start := time.Now()
		res := runner(f)
		fmt.Printf("=== %s (scale %s, %v) ===\n%s\n", name, s.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if *exp == "all" {
		for _, name := range experiments.Names() {
			run(name)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(name))
		}
	}
	if f.CacheDir != "" {
		fmt.Printf("cache: %d teachers trained, %d artifacts loaded from %s\n",
			f.TeachersTrained, f.CacheHits, f.CacheDir)
	}
}

// runScenarios drives the generic pipeline over the requested scenarios.
func runScenarios(scen, scale, cache, out string, workers int) {
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create output directory: %v\n", err)
			os.Exit(1)
		}
	}
	names := scenario.Names()
	if scen != "all" {
		names = nil
		for _, n := range strings.Split(scen, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	p := &scenario.Pipeline{Config: scenario.Config{
		Scale:    scale,
		Workers:  workers,
		CacheDir: cache,
		OutDir:   out,
	}}
	start := time.Now()
	reports, err := p.RunAll(names)
	for i, rep := range reports {
		if rep == nil {
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", names[i], rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ran %d scenarios in %v\n", len(reports), time.Since(start).Round(time.Millisecond))
}
