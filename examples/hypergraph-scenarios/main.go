// Hypergraph scenarios: the paper's Table 2 / Appendix B formulations as
// working systems. For each global scenario — NFV placement (B.1),
// ultra-dense cellular association (B.2), and cluster job scheduling (B.3) —
// we build the hypergraph, run the system, and let Metis rank the critical
// hyperedge-vertex connections through the public API.
package main

import (
	"fmt"

	metis "repro"
	"repro/internal/cellular"
	"repro/internal/jobs"
	"repro/internal/nfv"
)

func main() {
	// --- Scenario #2: NFV placement (servers = vertices, NFs = hyperedges).
	fmt.Println("== NFV placement (Appendix B.1) ==")
	p := nfv.Problem{
		ServerCapacity: []float64{10, 10, 20, 20},
		NFDemand:       []float64{6, 9, 0.2, 8},
		Replicas:       []int{3, 3, 1, 3},
	}
	pl := nfv.Greedy(p)
	h := pl.Hypergraph()
	fmt.Printf("hypergraph: %d NFs (hyperedges) × %d servers (vertices), %d placements\n",
		h.NumE, h.NumV, len(h.Connections()))
	fmt.Printf("max server utilization: %.2f\n", pl.MaxUtilization())
	res := metis.CriticalConnections(pl, metis.MaskOptions{Lambda1: 0.05, Lambda2: 0.05, Iterations: 250, Seed: 1})
	conns := h.Connections()
	fmt.Println("top 3 critical instance placements:")
	for rank, ci := range res.TopConnections(3) {
		c := conns[ci]
		fmt.Printf("  #%d NF%d on server %d (mask %.3f)\n", rank+1, c.E, c.V, res.W[ci])
	}

	// --- Scenario #3: ultra-dense cellular (users = vertices, coverage =
	// hyperedges).
	fmt.Println("\n== Ultra-dense cellular association (Appendix B.2) ==")
	net := cellular.RandomNetwork(25, 6, 2)
	assoc := cellular.Associate(net)
	sys := cellular.NewSystem(assoc)
	ch := sys.Hypergraph()
	fmt.Printf("hypergraph: %d stations (hyperedges) × %d users (vertices), %d coverage relations\n",
		ch.NumE, ch.NumV, len(ch.Connections()))
	cres := metis.CriticalConnections(sys, metis.MaskOptions{Lambda1: 0.02, Lambda2: 0.1, Iterations: 200, Seed: 2})
	cconns := ch.Connections()
	fmt.Println("top 3 critical user-station coverage relations:")
	for rank, ci := range cres.TopConnections(3) {
		c := cconns[ci]
		fmt.Printf("  #%d station %d covering user %d (demand %.1f, mask %.3f)\n",
			rank+1, c.E, c.V, net.UserDemand[c.V], cres.W[ci])
	}

	// --- Scenario #4: cluster job scheduling (stages = vertices,
	// dependencies = hyperedges).
	fmt.Println("\n== Cluster job scheduling (Appendix B.3) ==")
	dag := jobs.RandomDAG(12, 3)
	jsys := &jobs.System{DAG: dag}
	fmt.Printf("DAG: %d stages, %d dependencies, makespan %.1f\n",
		len(dag.Work), len(dag.Dependencies()), dag.Makespan())
	fmt.Printf("critical path: %v\n", dag.CriticalPath())
	jres := metis.CriticalConnections(jsys, metis.MaskOptions{Lambda1: 0.01, Lambda2: 0.02, Iterations: 300, Seed: 3})
	fmt.Println("top 3 critical dependencies (expect critical-path edges):")
	for rank, ci := range jres.TopConnections(3) {
		dep := jsys.DependencyOfConnection(ci)
		fmt.Printf("  #%d stage %d → stage %d (mask %.3f)\n", rank+1, dep[0], dep[1], jres.W[ci])
	}
}
