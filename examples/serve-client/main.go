// Command serve-client demonstrates the Go SDK (repro/client) against a
// running metis-serve daemon: list the models, run a batch prediction over
// the binary batch codec, and optionally trigger a hot reload. The CI
// serving smoke drives it as the binary-codec end-to-end check.
//
//	go run ./examples/serve-client -addr http://localhost:9090 \
//	    -model quickstart -x 2,1 -x 14,4
//
// Output (one line per section, greppable):
//
//	models: [quickstart]
//	actions: [0 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/client"
)

// rowsFlag collects repeated -x flags, each a comma-separated feature row.
type rowsFlag [][]float64

func (r *rowsFlag) String() string { return fmt.Sprint([][]float64(*r)) }

func (r *rowsFlag) Set(s string) error {
	var row []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad feature %q: %w", f, err)
		}
		row = append(row, v)
	}
	*r = append(*r, row)
	return nil
}

func main() {
	addr := flag.String("addr", "http://localhost:9090", "metis-serve base URL")
	model := flag.String("model", "", "model to predict with (default: first served model)")
	reload := flag.Bool("reload", false, "trigger a hot reload before predicting")
	json := flag.Bool("json", false, "force the JSON codec instead of the binary batch format")
	var rows rowsFlag
	flag.Var(&rows, "x", "input row as comma-separated features (repeatable for a batch)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var opts []client.Option
	if *json {
		opts = append(opts, client.WithJSON())
	}
	c := client.New(*addr, opts...)

	if *reload {
		names, err := c.Reload(ctx, "")
		if err != nil {
			fail(err)
		}
		fmt.Printf("reloaded: %v\n", names)
	}

	models, err := c.Models(ctx)
	if err != nil {
		fail(err)
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	fmt.Printf("models: %v\n", names)

	if len(rows) == 0 {
		return
	}
	name := *model
	if name == "" {
		if len(models) == 0 {
			fail(fmt.Errorf("no models served at %s", *addr))
		}
		name = models[0].Name
	}
	pred, err := c.PredictBatch(ctx, name, rows)
	if err != nil {
		fail(err)
	}
	if pred.Actions != nil {
		fmt.Printf("actions: %v\n", pred.Actions)
	} else {
		fmt.Printf("values: %v\n", pred.Values)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
