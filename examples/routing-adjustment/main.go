// Routing adjustment: the §6.5 use case. Route traffic with a RouteNet*-
// style optimizer on NSFNet, compute Metis's connection masks through the
// public API, and use the mask values at diverting nodes to pick a reroute
// path without measuring end-to-end latency first.
package main

import (
	"fmt"

	metis "repro"
	"repro/internal/experiments"
	"repro/internal/routenet"
	"repro/internal/routing"
	"repro/internal/topo"
)

func main() {
	g := topo.NSFNet(10)
	fmt.Println("training the RouteNet* delay predictor…")
	model := routenet.NewModel(41)
	model.Train(g, routenet.TrainConfig{Demands: 12, Generations: 50, Seed: 43})

	demands := routing.RandomDemands(g, 12, 2, 6, 900)
	opt := &routenet.Optimizer{Model: model, Graph: g}
	rt := opt.Route(demands)

	fmt.Println("searching critical connections…")
	sys := &experiments.RouteNetSystem{Opt: opt, Routing: rt}
	res := metis.CriticalConnections(sys, metis.MaskOptions{Lambda1: 0.25, Lambda2: 1, Iterations: 80, Seed: 7})
	off := routenet.ConnectionOffsets(rt.Paths)
	dm := routing.DelayModel{}
	loads := rt.LinkLoads(g)

	// For each demand with ≥2 alternatives diverting at different nodes,
	// recommend the one whose diverting-node mask is LOWER (the §6.5
	// observation: low mask → the current hop was not critical → a good
	// alternative exists there). The indicator is statistical — the paper
	// reports 72% of pairs in quadrants I/III — so we tally every scenario
	// and illustrate a few.
	shown, agree, total := 0, 0, 0
	for i, p0 := range rt.Paths {
		d := rt.Demands[i]
		cands := g.CandidatePaths(d.Src, d.Dst, 1)
		type alt struct {
			path    topo.Path
			pos     int
			latency float64
		}
		var alts []alt
		n0 := p0.Nodes(g)
		for _, c := range cands {
			nc := c.Nodes(g)
			pos := 0
			for pos < len(n0)-1 && pos < len(nc)-1 && n0[pos+1] == nc[pos+1] {
				pos++
			}
			if pos >= len(p0) || equalPaths(c, p0) {
				continue
			}
			lat := 0.0
			for _, id := range c {
				load := loads[id] + d.VolumeMbps
				for _, oid := range p0 {
					if oid == id { // demand already counted on shared links
						load = loads[id]
						break
					}
				}
				lat += dm.LinkDelayMs(load, g.Links[id].CapMbps)
			}
			alts = append(alts, alt{path: c, pos: pos, latency: lat})
		}
		if len(alts) < 2 || alts[0].pos == alts[1].pos {
			continue
		}
		total++
		w1 := res.W[off[i]+alts[0].pos]
		w2 := res.W[off[i]+alts[1].pos]
		pick, other := alts[0], alts[1]
		if w1 > w2 { // higher mask at divert point → avoid that alternative
			pick, other = alts[1], alts[0]
		}
		verdict := "✓ mask picked the faster path"
		if pick.latency <= other.latency {
			agree++
		} else {
			verdict = "✗ mask picked the slower path"
		}
		if shown < 3 {
			shown++
			fmt.Printf("\nreroute demand %d→%d (current %s):\n", d.Src, d.Dst, p0.String(g))
			fmt.Printf("  candidate A %-20s divert-mask %.3f, actual latency %.2f ms\n", alts[0].path.String(g), w1, alts[0].latency)
			fmt.Printf("  candidate B %-20s divert-mask %.3f, actual latency %.2f ms\n", alts[1].path.String(g), w2, alts[1].latency)
			fmt.Printf("  Metis recommends %s — %s\n", pick.path.String(g), verdict)
		}
	}
	if total == 0 {
		fmt.Println("no multi-alternative demands in this sample; rerun with another seed")
	} else {
		fmt.Printf("\nindicator agreement: %d/%d scenarios (paper: ~72%% in quadrants I/III, +19%% near-axis)\n", agree, total)
	}
}

func equalPaths(a, b topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
