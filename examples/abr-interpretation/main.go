// ABR interpretation: the paper's headline workflow (§6.1, Figure 7).
// Train a Pensieve-style DNN teacher on synthetic 3G traces, distill it into
// a decision tree with the public metis API, inspect the rules, and verify
// the tree's QoE matches the DNN.
package main

import (
	"fmt"

	metis "repro"
	"repro/internal/abr"
	"repro/internal/pensieve"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	env := abr.NewEnv(abr.Config{
		Video:  abr.StandardVideo(48, 1),
		Traces: trace.HSDPA(12, 400, 7),
	})

	fmt.Println("training the Pensieve teacher (behavior cloning + A2C)…")
	agent := pensieve.NewAgent(2, false)
	pensieve.TrainStandard(agent, env, 0.5, 5)

	fmt.Println("distilling with Metis…")
	res, err := metis.Distill(env, agent, metis.DistillConfig{
		MaxLeaves:       120,
		Iterations:      2,
		EpisodesPerIter: 10,
		MaxSteps:        50,
		Resample:        true, // Equation 1 advantage resampling
		QHorizon:        5,
		FeatureNames:    abr.FeatureNames(),
		Seed:            3,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\ntop of the tree (decision variables r_t, B, θ_t, T_t as in Fig. 7):\n%s\n",
		res.Tree.Rules(3))

	dnnQoE := stats.Mean(abr.RunTraces(env, agent.Selector(), 12))
	treeQoE := stats.Mean(abr.RunTraces(env, abr.PolicySelector(res.Tree.Predict), 12))
	fmt.Printf("QoE per chunk — DNN %.3f vs tree %.3f (gap %+.2f%%; paper reports <0.6%%)\n",
		dnnQoE, treeQoE, 100*(treeQoE-dnnQoE)/dnnQoE)
	fmt.Printf("deployment: DNN %d params vs tree %d leaves, %d bytes\n",
		agent.Actor.NumParams(), res.Tree.NumLeaves(), res.Tree.SizeBytes())
}
