// Flow scheduling: the AuTO use case (§6.4). Distill the long-flow RL agent
// into a tree via the public API and show the lightweight-deployment wins:
// equal FCT, far lower decision latency, and branch-only evaluation that
// could run on a SmartNIC.
package main

import (
	"fmt"
	"time"

	metis "repro"
	"repro/internal/auto"
	"repro/internal/dcn"
)

// treeSched adapts the distilled tree to the fabric's Agent interface.
type treeSched struct{ t *metis.Tree }

func (s treeSched) Decide(state []float64) int { return s.t.Predict(state) }

func main() {
	fmt.Println("training AuTO's lRLA (evolution strategies on the fabric)…")
	lrla := auto.NewLRLA(21)
	auto.TrainLRLA(lrla, auto.TrainConfig{Workload: dcn.WebSearch, FlowsPerRun: 300, Generations: 8, Seed: 23})

	states, actions := auto.CollectLRLADataset(lrla, dcn.WebSearch, 4, 31)
	tree, err := metis.FitTree(&metis.Dataset{X: states, Y: actions}, metis.DistillConfig{
		MaxLeaves:    2000,
		FeatureNames: auto.LongFlowStateNames(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("distilled %d decisions into a %d-leaf tree\n\n", len(states), tree.NumLeaves())

	for name, agent := range map[string]dcn.Agent{"AuTO (DNN)": lrla, "Metis+AuTO (tree)": treeSched{tree}} {
		flows := dcn.GenerateFlows(dcn.WebSearch, 400, 16, dcn.DefaultCapBps, 0.6, 99)
		fab := dcn.NewFabric(dcn.Config{LongFlowAgent: agent})
		fab.Run(flows)
		s := dcn.ComputeFCTStats(flows)
		fmt.Printf("%-18s avg FCT %.3f ms, p99 %.3f ms\n", name, 1000*s.Mean, 1000*s.P99)
	}

	state := states[0]
	t0 := time.Now()
	for i := 0; i < 5000; i++ {
		lrla.Decide(state)
	}
	dnnLat := time.Since(t0) / 5000
	t0 = time.Now()
	for i := 0; i < 5000; i++ {
		tree.Predict(state)
	}
	treeLat := time.Since(t0) / 5000
	fmt.Printf("\ndecision latency: %v (DNN) vs %v (tree) → %.0f× faster\n", dnnLat, treeLat, float64(dnnLat)/float64(treeLat))
	fmt.Println("the tree evaluates with comparisons and branches only — offloadable to data-plane hardware (§6.4)")
}
