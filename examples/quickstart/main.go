// Quickstart: distill a toy teacher policy into an interpretable decision
// tree with the public metis API in under a minute.
//
// The "teacher" here is a hand-written policy (so the example runs
// instantly); swap in any trained rl.Policy — see examples/abr-interpretation
// for a real DNN teacher.
package main

import (
	"flag"
	"fmt"
	"path/filepath"

	metis "repro"
)

// buffers below 4 s are risky, above 12 s are safe: the teacher maps a
// two-feature state (buffer seconds, bandwidth Mbps) to one of three rates.
type teacher struct{}

func (teacher) ActionProbs(s []float64) []float64 {
	out := make([]float64, 3)
	switch {
	case s[0] < 4: // low buffer → lowest rate
		out[0] = 1
	case s[0] > 12 && s[1] > 2.5: // safe buffer and fast link → highest
		out[2] = 1
	default:
		out[1] = 1
	}
	return out
}

// env is a minimal sequential environment whose state wanders through
// (buffer, bandwidth) space.
type env struct {
	buf, bw float64
	step    int
}

func (e *env) Reset(seed int64) []float64 {
	e.buf = float64(uint64(seed)%16) + 0.5
	e.bw = 0.5 + float64(uint64(seed)%7)*0.7
	e.step = 0
	return e.state()
}

func (e *env) state() []float64 { return []float64{e.buf, e.bw} }

func (e *env) Step(a int) ([]float64, float64, bool) {
	e.step++
	e.buf += 1.3 - float64(a)
	if e.buf < 0 {
		e.buf = 0
	}
	if e.buf > 16 {
		e.buf = 16
	}
	e.bw += 0.37
	if e.bw > 5 {
		e.bw -= 5
	}
	return e.state(), 0, e.step >= 40
}

func (e *env) StateDim() int   { return 2 }
func (e *env) NumActions() int { return 3 }

func main() {
	save := flag.String("save", "", "write the distilled tree as a metis-serve artifact")
	name := flag.String("name", "quickstart", "model name recorded in the saved artifact's metadata")
	quantize := flag.Bool("quantize", false,
		"save the bin-quantized serving form (kind dtree/quantized) instead of the raw tree")
	flag.Parse()

	res, err := metis.Distill(&env{}, teacher{}, metis.DistillConfig{
		MaxLeaves:       8,
		Iterations:      2,
		EpisodesPerIter: 20,
		MaxSteps:        40,
		FeatureNames:    []string{"buffer_s", "bandwidth_Mbps"},
		Seed:            1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("distilled tree: %d leaves, fidelity %.1f%% on %d samples\n\n",
		res.Tree.NumLeaves(), 100*res.Fidelity, res.DatasetSize)
	fmt.Println(res.Tree.Rules(0))

	for _, probe := range [][]float64{{2, 1}, {8, 1}, {14, 4}} {
		fmt.Printf("state buffer=%.0fs bw=%.0fMbps → action %d\n",
			probe[0], probe[1], res.Tree.Predict(probe))
	}

	if *save != "" {
		meta := map[string]string{"name": *name}
		if *quantize {
			c, err := metis.Compile(res.Tree)
			if err != nil {
				panic(err)
			}
			q, err := metis.Quantize(c)
			if err != nil {
				panic(err)
			}
			if err := metis.SaveQuantized(*save, q, meta); err != nil {
				panic(err)
			}
			fmt.Printf("\nsaved quantized artifact to %s — serve it with:\n  metis-serve -dir %s\n",
				*save, filepath.Dir(*save))
			return
		}
		if err := metis.SaveTree(*save, res.Tree, meta); err != nil {
			panic(err)
		}
		fmt.Printf("\nsaved tree artifact to %s — serve it with:\n  metis-serve -dir %s\n",
			*save, filepath.Dir(*save))
	}
}
